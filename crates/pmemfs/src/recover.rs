//! The recovery orchestrator: the detection → recovery → degradation
//! pipeline.
//!
//! The paper stops at "the file system recovers the page from parity"
//! (§III-A); this module is that file-system half, made first-class. Any
//! [`CorruptionDetected`] surfaced through a read is routed here: the
//! orchestrator invalidates cached copies of the page, drives parity
//! reconstruction (hardware controller when present, software otherwise)
//! with bounded retries, verifies that the repair actually reached the
//! media, and transparently re-issues the read. A page whose repair cannot
//! be made to stick — an unrecoverable stripe, or a sticky device fault
//! that keeps dropping repair writes — enters a **persistent poison list**:
//! further accesses to that page fail closed with a structured [`Poisoned`]
//! error while the rest of the file keeps serving, and a verified full-page
//! rewrite ([`RecoveryOrchestrator::rewrite_page`]) clears the poison and
//! rebuilds its redundancy.
//!
//! State machine per page:
//!
//! ```text
//!           CorruptionDetected
//! Healthy ────────────────────▶ Recovering ──success (media verifies)──▶ Healthy
//!    ▲                             │
//!    │                             │ retries exhausted / unrecoverable stripe
//!    │   rewrite_page verifies     ▼
//!    └───────────────────────── Poisoned  (persistent; reads fail closed)
//! ```

use crate::fs::{DaxFs, FileHandle, FsError, RecoveryError};
use memsim::addr::{LineAddr, PageNum, CACHE_LINE, LINES_PER_PAGE, PAGE};
use memsim::engine::{CorruptionDetected, System};
use tvarak::checksum::{csum_slot, line_checksum, page_checksum};
use tvarak::controller::TvarakController;
use tvarak::init;
use tvarak::layout::NvmLayout;
use tvarak::parity::xor_into;
use tvarak::scrub::ScrubGranularity;
use std::error::Error;
use std::fmt;

// Whole-device fault handling is the other half of OS-side recovery: the
// page-granular orchestrator below degrades single pages, the replacement
// manager degrades (and resilvers) whole devices.
pub use crate::rebuild::{PoolState, ReplacementManager};

/// Structured degraded-mode error: the page is quarantined and accesses to
/// it fail closed. Everything else in the file keeps working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Poisoned {
    /// The quarantined page.
    pub page: PageNum,
}

impl fmt::Display for Poisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} is poisoned (unrecoverable corruption)", self.page)
    }
}

impl Error for Poisoned {}

/// One transition of the recovery pipeline, for structured event logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// Verification failed on `line`.
    Detected {
        /// The corrupt line.
        line: LineAddr,
    },
    /// The page was reconstructed from parity and the repair verified on
    /// media, after `attempts` attempts.
    Recovered {
        /// The repaired page.
        page: PageNum,
        /// Recovery attempts taken (1 = first try).
        attempts: u32,
    },
    /// Recovery could not be made to stick; the page entered the persistent
    /// poison list.
    Quarantined {
        /// The quarantined page.
        page: PageNum,
    },
    /// A verified full-page rewrite cleared the poison and rebuilt the
    /// page's redundancy.
    PoisonCleared {
        /// The formerly poisoned page.
        page: PageNum,
    },
    /// The page's data agreed with its parity reconstruction but not with
    /// the stored checksum — two-of-three says the checksum is the liar, so
    /// it was rebuilt from media instead of quarantining intact data.
    CsumsRebuilt {
        /// The page whose checksums were rebuilt.
        page: PageNum,
    },
    /// A scrub parity audit found the page's stripe no longer XORs to its
    /// stored parity while data and checksums agree; the stripe was
    /// re-silvered from media.
    ParityRebuilt {
        /// The audited page whose stripe was rebuilt.
        page: PageNum,
    },
}

/// Maximum poison-list entries the one-page persistent store can hold.
const POISON_CAP: usize = (PAGE - 8) / 8;

/// The detection → recovery → degradation orchestrator for one pool.
///
/// Owns a one-page persistent store (allocated from the pool itself) holding
/// the poison list, so quarantine decisions survive restarts — see
/// [`RecoveryOrchestrator::reload`].
#[derive(Debug)]
pub struct RecoveryOrchestrator {
    layout: NvmLayout,
    store: FileHandle,
    granularity: ScrubGranularity,
    max_retries: u32,
    poisoned: Vec<PageNum>,
    events: Vec<RecoveryEvent>,
    detections: u64,
    recoveries: u64,
    quarantines: u64,
    parity_rebuilds: u64,
}

impl RecoveryOrchestrator {
    /// Create an orchestrator for `fs`'s pool, allocating its persistent
    /// poison-list page. `granularity` names the checksum granularity the
    /// running design maintains (what software recovery verifies against);
    /// `max_retries` bounds reconstruction attempts per incident.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if the pool cannot hold the one-page store.
    ///
    /// # Panics
    ///
    /// Panics if `max_retries == 0`.
    pub fn new(
        fs: &mut DaxFs,
        sys: &mut System,
        granularity: ScrubGranularity,
        max_retries: u32,
    ) -> Result<Self, FsError> {
        assert!(max_retries > 0, "need at least one recovery attempt");
        let store = fs.create(sys, PAGE as u64)?;
        Ok(RecoveryOrchestrator {
            layout: *fs.layout(),
            store,
            granularity,
            max_retries,
            poisoned: Vec::new(),
            events: Vec::new(),
            detections: 0,
            recoveries: 0,
            quarantines: 0,
            parity_rebuilds: 0,
        })
    }

    /// Rebuild an orchestrator from its persistent store after a restart:
    /// the poison list is read back from media, so quarantined pages stay
    /// quarantined across process lifetimes.
    pub fn reload(
        fs: &DaxFs,
        sys: &System,
        store: FileHandle,
        granularity: ScrubGranularity,
        max_retries: u32,
    ) -> Self {
        assert!(max_retries > 0, "need at least one recovery attempt");
        let page = store.page(0);
        let mut bytes = vec![0u8; PAGE];
        for i in 0..LINES_PER_PAGE {
            bytes[i * CACHE_LINE..(i + 1) * CACHE_LINE]
                .copy_from_slice(&sys.memory().peek_line(page.line(i)));
        }
        let count = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        let poisoned = (0..count.min(POISON_CAP))
            .map(|i| {
                let off = 8 + i * 8;
                PageNum(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()))
            })
            .collect();
        RecoveryOrchestrator {
            layout: *fs.layout(),
            store,
            granularity,
            max_retries,
            poisoned,
            events: Vec::new(),
            detections: 0,
            recoveries: 0,
            quarantines: 0,
            parity_rebuilds: 0,
        }
    }

    /// The persistent poison-list store (pass to [`Self::reload`]).
    pub fn store(&self) -> &FileHandle {
        &self.store
    }

    /// The bound on reconstruction attempts per incident.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Give up on `page` without further recovery attempts and quarantine
    /// it. Drivers use this for repeat offenders: a page whose recoveries
    /// keep "succeeding" while reads keep detecting (a broken device read
    /// path) must not be retried forever.
    pub fn quarantine_page(&mut self, sys: &mut System, page: PageNum) -> Poisoned {
        self.quarantine(sys, page);
        Poisoned { page }
    }

    /// Whether `page` is quarantined.
    pub fn is_poisoned(&self, page: PageNum) -> bool {
        self.poisoned.contains(&page)
    }

    /// The quarantined pages, in quarantine order.
    pub fn poisoned_pages(&self) -> &[PageNum] {
        &self.poisoned
    }

    /// Corruption detections routed through the orchestrator.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Successful (media-verified) page recoveries.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Pages quarantined.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// The structured event log so far.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Drain the structured event log.
    pub fn take_events(&mut self) -> Vec<RecoveryEvent> {
        std::mem::take(&mut self.events)
    }

    /// Persist the poison list to its store page and rebuild the store's
    /// redundancy (an OS metadata update, below the measured path).
    fn persist(&mut self, sys: &mut System) {
        let page = self.store.page(0);
        let mut bytes = vec![0u8; PAGE];
        let n = self.poisoned.len().min(POISON_CAP);
        bytes[..8].copy_from_slice(&(n as u64).to_le_bytes());
        for (i, p) in self.poisoned.iter().take(n).enumerate() {
            bytes[8 + i * 8..16 + i * 8].copy_from_slice(&p.0.to_le_bytes());
        }
        let mem = sys.memory_mut();
        for i in 0..LINES_PER_PAGE {
            let mut line = [0u8; CACHE_LINE];
            line.copy_from_slice(&bytes[i * CACHE_LINE..(i + 1) * CACHE_LINE]);
            mem.poke_line(page.line(i), &line);
        }
        let idx = self.store.first_data_index();
        init::initialize_region(&self.layout, mem, idx..idx + 1);
        sys.invalidate_page(page);
    }

    /// Quarantine `page`: persist it on the poison list and drop cached
    /// copies so later touches miss to (poisoned) media state. The page's
    /// parity stripe is then re-silvered from media — its data is lost, but
    /// stale parity deltas must not keep implicating (or corrupting future
    /// reconstructions of) the surviving stripe members.
    fn quarantine(&mut self, sys: &mut System, page: PageNum) {
        if !self.is_poisoned(page) {
            self.poisoned.push(page);
            self.persist(sys);
        }
        self.quarantines += 1;
        self.events.push(RecoveryEvent::Quarantined { page });
        sys.invalidate_page(page);
        // Re-silver only while no non-poisoned sibling is checksum-failing:
        // a corrupt sibling still needs the old parity to reconstruct. When
        // deferred here, the stripe settles later — at the sibling's own
        // recovery or quarantine, or at the next scrub parity audit.
        if self.stripe_resilver_safe(sys, page) {
            // Flush first so other pages' in-flight redundancy updates reach
            // media before the rebuild; the poked stripe is then the new
            // ground truth and stale cached copies drop without writeback.
            sys.flush();
            init::refresh_parity_for_page(&self.layout, sys.memory_mut(), page);
            self.drop_stale_copies(sys, page);
        }
    }

    /// Check `page`'s *media* content against its stored checksum at the
    /// orchestrator's granularity — the post-repair acceptance test. A
    /// repair dropped by a sticky device fault fails this even though
    /// reconstruction itself verified.
    ///
    /// Lines that are not live under firmware shadow-RAID (their device
    /// failed, or the spare has not resilvered them yet) are skipped: their
    /// media is not the logical value, and their durability is delegated to
    /// the shadow syndromes — reads reconstruct and verify on consumption.
    fn media_consistent(&self, sys: &System, page: PageNum) -> bool {
        let mem = sys.memory();
        match self.granularity {
            ScrubGranularity::CacheLine => {
                for i in 0..LINES_PER_PAGE {
                    let line = page.line(i);
                    let (cs_line, slot) = self.layout.cl_csum_loc(line);
                    if !mem.line_live(line) || !mem.line_live(cs_line) {
                        continue;
                    }
                    let data = mem.peek_line(line);
                    if csum_slot(&mem.peek_line(cs_line), slot) != line_checksum(&data) {
                        return false;
                    }
                }
                true
            }
            ScrubGranularity::Page => {
                let (cs_line, slot) = self.layout.page_csum_loc(page);
                if !mem.page_fully_live(page) || !mem.line_live(cs_line) {
                    return true;
                }
                let mut bytes = vec![0u8; PAGE];
                for i in 0..LINES_PER_PAGE {
                    bytes[i * CACHE_LINE..(i + 1) * CACHE_LINE]
                        .copy_from_slice(&mem.peek_line(page.line(i)));
                }
                csum_slot(&mem.peek_line(cs_line), slot) == page_checksum(&bytes)
            }
        }
    }

    /// Whether every line the peek-based repair paths around `page` would
    /// read or recompute from — the page itself, its design-parity lines,
    /// its stripe siblings, and its checksum lines — is live under firmware
    /// shadow-RAID. Trivially true with RAID unconfigured. Dead lines'
    /// media is not the logical value: voting on or re-silvering from them
    /// would process garbage, so repairs refuse and fail closed instead.
    fn page_repair_lines_live(&self, sys: &System, page: PageNum) -> bool {
        let mem = sys.memory();
        if !mem.raid_enabled() {
            return true;
        }
        // Quarantine also routes abandoned *non-data* pages (design parity,
        // checksum regions) here; they have no design stripe or checksum
        // coverage to repair from, so peek-based repair always refuses.
        if !self.layout.is_data_line(page.line(0)) {
            return false;
        }
        for i in 0..LINES_PER_PAGE {
            let line = page.line(i);
            let (cs_line, _) = self.layout.cl_csum_loc(line);
            if !mem.line_live(line)
                || !mem.line_live(self.layout.parity_line_of(line))
                || !mem.line_live(cs_line)
                || self
                    .layout
                    .sibling_lines_of(line)
                    .into_iter()
                    .any(|sib| !mem.line_live(sib))
            {
                return false;
            }
        }
        let (pcs_line, _) = self.layout.page_csum_loc(page);
        mem.line_live(pcs_line)
    }

    /// Software parity reconstruction for designs without a hardware
    /// controller: XOR parity with sibling lines from media, verify against
    /// the stored checksum, repair through the firmware. Reads and writes
    /// are charged as redundancy/data NVM traffic like the hardware path.
    fn recover_sw(&self, sys: &mut System, page: PageNum) -> Result<(), RecoveryFailedSw> {
        let layout = self.layout;
        let granularity = self.granularity;
        sys.with_hooks_env(|_hooks, env| {
            let mut reconstructed = vec![[0u8; CACHE_LINE]; LINES_PER_PAGE];
            for (o, rec) in reconstructed.iter_mut().enumerate() {
                let line = page.line(o);
                let mut r = env.nvm_read_red(0, layout.parity_line_of(line), true);
                for sib in layout.sibling_lines_of(line) {
                    let d = env.nvm_read_red(0, sib, true);
                    xor_into(&mut r, &d);
                }
                *rec = r;
            }
            let ok = match granularity {
                ScrubGranularity::CacheLine => reconstructed.iter().enumerate().all(|(o, rec)| {
                    let (cs_line, slot) = layout.cl_csum_loc(page.line(o));
                    let cs = env.nvm_read_red(0, cs_line, true);
                    csum_slot(&cs, slot) == line_checksum(rec)
                }),
                ScrubGranularity::Page => {
                    let mut bytes = vec![0u8; PAGE];
                    for (o, rec) in reconstructed.iter().enumerate() {
                        bytes[o * CACHE_LINE..(o + 1) * CACHE_LINE].copy_from_slice(rec);
                    }
                    let (cs_line, slot) = layout.page_csum_loc(page);
                    let cs = env.nvm_read_red(0, cs_line, true);
                    csum_slot(&cs, slot) == page_checksum(&bytes)
                }
            };
            if !ok {
                return Err(RecoveryFailedSw);
            }
            for (o, rec) in reconstructed.iter().enumerate() {
                env.nvm_write_data(0, page.line(o), rec);
            }
            env.counters().pages_recovered += 1;
            Ok(())
        })
    }

    /// Two-of-three arbitration for a failed reconstruction: if the page's
    /// media content already equals its parity reconstruction, data and
    /// parity out-vote the stored checksum — the checksum is the rotten
    /// component (e.g. recomputed over a misread line by a page-granular
    /// update). Rebuild the checksums from media instead of quarantining
    /// intact data. Returns whether the vote carried and the repair ran.
    fn try_csum_repair(&mut self, sys: &mut System, page: PageNum) -> bool {
        // The vote peeks media; with any involved line dead the ballot is
        // garbage and the recompute could clobber live checksum slots.
        // Refuse — the page falls through to quarantine (fail closed).
        if !self.page_repair_lines_live(sys, page) {
            return false;
        }
        let mem = sys.memory();
        for i in 0..LINES_PER_PAGE {
            let line = page.line(i);
            let mut rec = mem.peek_line(self.layout.parity_line_of(line));
            for sib in self.layout.sibling_lines_of(line) {
                xor_into(&mut rec, &mem.peek_line(sib));
            }
            if rec != mem.peek_line(line) {
                return false;
            }
        }
        sys.flush();
        init::refresh_csums_for_page(&self.layout, sys.memory_mut(), page);
        self.drop_stale_copies(sys, page);
        self.events.push(RecoveryEvent::CsumsRebuilt { page });
        true
    }

    /// Whether `page`'s stripe may be re-silvered from media: every member
    /// page not on the poison list must pass its stored checksum. A stripe
    /// mismatch with a checksum-failing member is *data* corruption on that
    /// member — rebuilding parity from media then would erase the only
    /// independent witness of the member's acknowledged data (and the
    /// two-of-three vote would later count stale media twice). Poisoned
    /// members are excluded: their data is already declared lost.
    fn stripe_resilver_safe(&self, sys: &System, page: PageNum) -> bool {
        // Under firmware shadow-RAID, re-silvering peeks member media; a
        // dead member's media is not its logical value, so the rebuild is
        // deferred until the bank resilvers.
        if !self.page_repair_lines_live(sys, page) {
            return false;
        }
        let geom = self.layout.geometry();
        let stripe = geom.stripe_of(page.nvm_index());
        let mem = sys.memory();
        geom.data_pages_of_stripe(stripe)
            .into_iter()
            .map(memsim::addr::nvm_page)
            .filter(|m| !self.is_poisoned(*m))
            .all(|m| mem.page_fully_live(m) && self.media_consistent(sys, m))
    }

    /// Repair a scrub parity-audit finding: the page's data and checksums
    /// agree but its stripe no longer XORs to the stored parity (redundancy
    /// rot — e.g. a parity delta computed from a misread old value). The
    /// data is intact, so the stripe is re-silvered from media rather than
    /// reconstructing anything. Refused (returning `false`) while any
    /// non-poisoned stripe member fails its checksum — see
    /// [`Self::stripe_resilver_safe`].
    pub fn repair_parity(&mut self, sys: &mut System, page: PageNum) -> bool {
        if !self.stripe_resilver_safe(sys, page) {
            return false;
        }
        sys.flush();
        init::refresh_parity_for_page(&self.layout, sys.memory_mut(), page);
        self.drop_stale_copies(sys, page);
        self.events.push(RecoveryEvent::ParityRebuilt { page });
        self.parity_rebuilds += 1;
        true
    }

    /// Parity stripes re-silvered after scrub parity-audit findings.
    pub fn parity_rebuilds(&self) -> u64 {
        self.parity_rebuilds
    }

    /// Handle one detected corruption: invalidate the page, attempt
    /// reconstruction up to `max_retries` times (each attempt must verify on
    /// media to count), quarantine on failure. A failed reconstruction whose
    /// page nevertheless matches its parity reconstruction is arbitrated by
    /// two-of-three vote: data + parity against the checksum — see
    /// [`Self::try_csum_repair`].
    ///
    /// Software designs keep their redundancy through the cache hierarchy,
    /// so the hierarchy is flushed first to settle checksums and parity onto
    /// media; the hardware controller's redundancy is writeback-coherent and
    /// needs no flush, but the flush is harmless there.
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] if the page was, or has just been, quarantined.
    pub fn handle(
        &mut self,
        fs: &mut DaxFs,
        sys: &mut System,
        err: CorruptionDetected,
    ) -> Result<(), Poisoned> {
        let page = err.line.page();
        self.detections += 1;
        self.events.push(RecoveryEvent::Detected { line: err.line });
        if self.is_poisoned(page) {
            return Err(Poisoned { page });
        }
        // Flush FIRST: the page may hold acknowledged dirty lines besides
        // the corrupt one — invalidating before writing them back would
        // silently revert them to their old (still-verifying) media value.
        // The flush drains the hierarchy, so the corrupt line's next read
        // misses to media as required; per-attempt invalidation below keeps
        // retries honest.
        sys.flush();
        for attempt in 1..=self.max_retries {
            sys.invalidate_page(page);
            let ok = match fs.recover_page(sys, page) {
                Ok(()) => true,
                Err(RecoveryError::NoController) => self.recover_sw(sys, page).is_ok(),
                Err(RecoveryError::Unrecoverable(_)) => false,
            };
            let ok = ok || self.try_csum_repair(sys, page);
            if ok && self.media_consistent(sys, page) {
                self.recoveries += 1;
                self.events.push(RecoveryEvent::Recovered { page, attempts: attempt });
                return Ok(());
            }
        }
        self.quarantine(sys, page);
        Err(Poisoned { page })
    }

    /// Fail closed if any file page overlapping `[offset, offset + len)` is
    /// poisoned. Software designs have no inline verification, so a demand
    /// access cannot *detect* its way to the poison list — callers on those
    /// designs check ranges explicitly before trusting bytes.
    pub fn check_range(&self, file: &FileHandle, offset: u64, len: usize) -> Result<(), Poisoned> {
        self.check_poison(file, offset, len)
    }

    fn check_poison(&self, file: &FileHandle, offset: u64, len: usize) -> Result<(), Poisoned> {
        if len == 0 {
            return Ok(());
        }
        let first = offset / PAGE as u64;
        let last = (offset + len as u64 - 1) / PAGE as u64;
        for n in first..=last {
            let page = file.page(n);
            if self.is_poisoned(page) {
                return Err(Poisoned { page });
            }
        }
        Ok(())
    }

    /// Orchestrated read: like [`FileHandle::read`], but corruption is
    /// transparently recovered and the read re-issued. A page that keeps
    /// detecting after successful-looking recoveries (a sticky misdirected
    /// read: the media is fine, the device path is broken) is quarantined
    /// after `max_retries` re-issues.
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] when the range touches a quarantined page —
    /// degraded mode fails closed, it never returns made-up bytes.
    pub fn read(
        &mut self,
        fs: &mut DaxFs,
        sys: &mut System,
        file: &FileHandle,
        core: usize,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), Poisoned> {
        self.check_poison(file, offset, buf.len())?;
        let mut incidents: Vec<(PageNum, u32)> = Vec::new();
        loop {
            match file.read(sys, core, offset, buf) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let page = e.line.page();
                    let n = match incidents.iter_mut().find(|(p, _)| *p == page) {
                        Some((_, n)) => {
                            *n += 1;
                            *n
                        }
                        None => {
                            incidents.push((page, 1));
                            1
                        }
                    };
                    if n > self.max_retries {
                        self.quarantine(sys, page);
                        return Err(Poisoned { page });
                    }
                    self.handle(fs, sys, e)?;
                }
            }
        }
    }

    /// Orchestrated write: poisoned pages reject writes (use
    /// [`Self::rewrite_page`] to clear poison); corruption surfaced by
    /// write-allocate fills is recovered like a read.
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] when the range touches a quarantined page.
    pub fn write(
        &mut self,
        fs: &mut DaxFs,
        sys: &mut System,
        file: &FileHandle,
        core: usize,
        offset: u64,
        data: &[u8],
    ) -> Result<(), Poisoned> {
        self.check_poison(file, offset, data.len())?;
        let mut incidents: Vec<(PageNum, u32)> = Vec::new();
        loop {
            match file.write(sys, core, offset, data) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let page = e.line.page();
                    let n = match incidents.iter_mut().find(|(p, _)| *p == page) {
                        Some((_, n)) => {
                            *n += 1;
                            *n
                        }
                        None => {
                            incidents.push((page, 1));
                            1
                        }
                    };
                    if n > self.max_retries {
                        self.quarantine(sys, page);
                        return Err(Poisoned { page });
                    }
                    self.handle(fs, sys, e)?;
                }
            }
        }
    }

    /// Clear a page's poison with a verified full-page rewrite: write the
    /// new content through the firmware, confirm it reached the media (a
    /// still-active sticky fault keeps the page quarantined), rebuild the
    /// page's checksums and parity from media, and drop every stale cached
    /// copy (data hierarchy, controller caches, LLC redundancy partition).
    ///
    /// Also usable on healthy pages as a redundancy-rebuilding page write.
    ///
    /// # Errors
    ///
    /// Returns [`Poisoned`] if the rewrite did not reach the media — the
    /// page stays quarantined until the underlying fault is cleared
    /// (`Memory::disarm_fault`, modelling device replacement).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page or `n` is out of range.
    pub fn rewrite_page(
        &mut self,
        _fs: &mut DaxFs,
        sys: &mut System,
        file: &FileHandle,
        n: u64,
        data: &[u8],
    ) -> Result<(), Poisoned> {
        assert_eq!(data.len(), PAGE, "rewrite must cover the whole page");
        let page = file.page(n);
        // Settle all dirty state so the media-level redundancy rebuild below
        // sees ground truth, then drop the page's (stale or poisoned) lines.
        sys.flush();
        sys.invalidate_page(page);
        let mem = sys.memory_mut();
        for i in 0..LINES_PER_PAGE {
            let mut line = [0u8; CACHE_LINE];
            line.copy_from_slice(&data[i * CACHE_LINE..(i + 1) * CACHE_LINE]);
            mem.write_line(page.line(i), &line);
        }
        // Acceptance test: did the rewrite actually reach the media?
        for i in 0..LINES_PER_PAGE {
            if mem.peek_line(page.line(i))[..] != data[i * CACHE_LINE..(i + 1) * CACHE_LINE] {
                if !self.is_poisoned(page) {
                    self.quarantine(sys, page);
                }
                return Err(Poisoned { page });
            }
        }
        // Rebuild this page's redundancy from media ground truth.
        let idx = file.first_data_index() + n;
        init::initialize_region(&self.layout, mem, idx..idx + 1);
        self.drop_stale_copies(sys, page);
        if let Some(pos) = self.poisoned.iter().position(|&p| p == page) {
            self.poisoned.remove(pos);
            self.persist(sys);
            self.events.push(RecoveryEvent::PoisonCleared { page });
        }
        Ok(())
    }

    /// Drop cached copies of `page` and of every redundancy line covering it
    /// (checksum lines, parity lines) from the data hierarchy and, when a
    /// controller is present, from its redundancy caches.
    fn drop_stale_copies(&self, sys: &mut System, page: PageNum) {
        sys.invalidate_page(page);
        let layout = self.layout;
        let mut red_lines: Vec<LineAddr> = Vec::new();
        for i in 0..LINES_PER_PAGE {
            let line = page.line(i);
            red_lines.push(layout.cl_csum_loc(line).0);
            red_lines.push(layout.parity_line_of(line));
        }
        red_lines.push(layout.page_csum_loc(page).0);
        red_lines.sort_unstable_by_key(|l| l.0);
        red_lines.dedup();
        // Data hierarchy: software schemes cache checksum/parity lines as
        // ordinary data. Invalidate the whole holding pages (coarse, safe).
        let mut red_pages: Vec<PageNum> = red_lines.iter().map(|l| l.page()).collect();
        red_pages.sort_unstable_by_key(|p| p.0);
        red_pages.dedup();
        for p in red_pages {
            sys.invalidate_page(p);
        }
        // Controller redundancy caches.
        sys.with_hooks_env(|hooks, env| {
            if let Some(ctrl) = hooks.as_any_mut().downcast_mut::<TvarakController>() {
                for line in &red_lines {
                    ctrl.drop_cached_red(*line, env);
                }
            }
        });
    }
}

/// Internal marker: software reconstruction failed verification.
struct RecoveryFailedSw;

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::config::SystemConfig;
    use memsim::engine::{NullHooks, System};
    use memsim::FirmwareFault;
    use tvarak::controller::{TvarakConfig, TvarakController};

    fn tvarak_setup(pages: u64) -> (System, DaxFs, RecoveryOrchestrator, FileHandle) {
        let cfg = SystemConfig::small();
        let layout = NvmLayout::new(cfg.nvm.dimms, pages);
        let ctrl = TvarakController::new(
            TvarakConfig::default(),
            layout,
            cfg.llc_banks,
            cfg.controller.cache_bytes,
            cfg.controller.cache_ways,
        );
        let mut sys = System::new(cfg, Box::new(ctrl));
        let mut fs = DaxFs::new(layout, &mut sys);
        let orch =
            RecoveryOrchestrator::new(&mut fs, &mut sys, ScrubGranularity::CacheLine, 3).unwrap();
        let f = fs.create(&mut sys, 4 * 4096).unwrap();
        fs.dax_map(&mut sys, &f);
        (sys, fs, orch, f)
    }

    fn sw_setup(pages: u64) -> (System, DaxFs, RecoveryOrchestrator, FileHandle) {
        let cfg = SystemConfig::small();
        let layout = NvmLayout::new(cfg.nvm.dimms, pages);
        let mut sys = System::new(cfg, Box::new(NullHooks));
        let mut fs = DaxFs::new(layout, &mut sys);
        let orch =
            RecoveryOrchestrator::new(&mut fs, &mut sys, ScrubGranularity::CacheLine, 3).unwrap();
        let f = fs.create(&mut sys, 4 * 4096).unwrap();
        fs.dax_map(&mut sys, &f);
        (sys, fs, orch, f)
    }

    #[test]
    fn read_transparently_recovers_lost_write() {
        let (mut sys, mut fs, mut orch, f) = tvarak_setup(16);
        f.write(&mut sys, 0, 0, &[0x11u8; 64]).unwrap();
        sys.flush();
        let line = f.addr(0).line();
        sys.memory_mut().arm_fault(line, FirmwareFault::LostWrite);
        f.write(&mut sys, 0, 0, &[0x22u8; 64]).unwrap();
        sys.flush();
        sys.invalidate_page(line.page());
        let mut buf = [0u8; 64];
        orch.read(&mut fs, &mut sys, &f, 0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0x22u8; 64], "read returns the acknowledged data");
        assert_eq!(orch.recoveries(), 1);
        assert_eq!(orch.quarantines(), 0);
        assert!(matches!(orch.events()[0], RecoveryEvent::Detected { .. }));
        assert!(matches!(
            orch.events()[1],
            RecoveryEvent::Recovered { attempts: 1, .. }
        ));
    }

    #[test]
    fn sw_recovery_without_controller() {
        let (mut sys, mut fs, mut orch, f) = sw_setup(16);
        // Software design: maintain CL checksums + parity functionally.
        f.write(&mut sys, 0, 0, &[0x55u8; 64]).unwrap();
        sys.flush();
        let idx = f.first_data_index();
        init::initialize_region(fs.layout(), sys.memory_mut(), idx..idx + f.pages());
        // Silent media corruption, then detection via checksum mismatch is
        // the scrubber's job; here we hand the orchestrator the finding.
        let line = f.addr(0).line();
        sys.memory_mut().poke_line(line, &[0x66u8; 64]);
        sys.invalidate_page(line.page());
        orch.handle(&mut fs, &mut sys, CorruptionDetected { line })
            .unwrap();
        let mut buf = [0u8; 64];
        f.read(&mut sys, 0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0x55u8; 64], "software recovery restored the line");
        assert_eq!(orch.recoveries(), 1);
    }

    #[test]
    fn sticky_fault_quarantines_and_rest_of_file_serves() {
        let (mut sys, mut fs, mut orch, f) = tvarak_setup(16);
        f.write(&mut sys, 0, 0, &[0x11u8; 64]).unwrap();
        f.write(&mut sys, 0, 4096, &[0x44u8; 64]).unwrap();
        sys.flush();
        let line = f.addr(0).line();
        // Corrupt the media and wedge the line: repair writes are dropped.
        sys.memory_mut().poke_line(line, &[0xffu8; 64]);
        sys.memory_mut().arm_fault(line, FirmwareFault::StickyLostWrite);
        sys.invalidate_page(line.page());
        let mut buf = [0u8; 64];
        let err = orch.read(&mut fs, &mut sys, &f, 0, 0, &mut buf).unwrap_err();
        assert_eq!(err.page, line.page());
        assert!(orch.is_poisoned(line.page()));
        // Degraded mode: the poisoned page fails closed...
        assert!(orch.read(&mut fs, &mut sys, &f, 0, 0, &mut buf).is_err());
        // ...while the rest of the file keeps serving.
        orch.read(&mut fs, &mut sys, &f, 0, 4096, &mut buf).unwrap();
        assert_eq!(buf, [0x44u8; 64]);
    }

    #[test]
    fn rewrite_clears_poison_once_fault_is_gone() {
        let (mut sys, mut fs, mut orch, f) = tvarak_setup(16);
        f.write(&mut sys, 0, 0, &[0x11u8; 64]).unwrap();
        sys.flush();
        let line = f.addr(0).line();
        sys.memory_mut().poke_line(line, &[0xffu8; 64]);
        sys.memory_mut().arm_fault(line, FirmwareFault::StickyLostWrite);
        sys.invalidate_page(line.page());
        let mut buf = [0u8; 64];
        assert!(orch.read(&mut fs, &mut sys, &f, 0, 0, &mut buf).is_err());
        assert!(orch.is_poisoned(line.page()));
        // Rewrite while the sticky fault is live: must NOT clear poison.
        let fresh = vec![0xabu8; PAGE];
        assert!(orch.rewrite_page(&mut fs, &mut sys, &f, 0, &fresh).is_err());
        assert!(orch.is_poisoned(line.page()));
        // Device replaced: fault disarmed, rewrite verifies, poison clears.
        sys.memory_mut().disarm_fault(line);
        orch.rewrite_page(&mut fs, &mut sys, &f, 0, &fresh).unwrap();
        assert!(!orch.is_poisoned(line.page()));
        orch.read(&mut fs, &mut sys, &f, 0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0xabu8; 64]);
        // Redundancy was rebuilt: scrubs stay clean.
        sys.flush();
        assert!(fs.scrub_cl(&sys, &f).is_empty());
        assert!(fs.scrub_parity(&sys, &f).is_empty());
        assert!(orch
            .events()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::PoisonCleared { .. })));
    }

    #[test]
    fn poison_list_survives_reload() {
        let (mut sys, mut fs, mut orch, f) = tvarak_setup(16);
        f.write(&mut sys, 0, 0, &[0x11u8; 64]).unwrap();
        sys.flush();
        let line = f.addr(0).line();
        sys.memory_mut().poke_line(line, &[0xffu8; 64]);
        sys.memory_mut().arm_fault(line, FirmwareFault::StickyLostWrite);
        sys.invalidate_page(line.page());
        let mut buf = [0u8; 64];
        assert!(orch.read(&mut fs, &mut sys, &f, 0, 0, &mut buf).is_err());
        let store = *orch.store();
        drop(orch);
        // "Restart": rebuild from the persistent store.
        let orch2 =
            RecoveryOrchestrator::reload(&fs, &sys, store, ScrubGranularity::CacheLine, 3);
        assert_eq!(orch2.poisoned_pages(), &[line.page()]);
    }

    #[test]
    fn sticky_misdirected_read_quarantines_despite_clean_media() {
        let (mut sys, mut fs, mut orch, f) = tvarak_setup(16);
        f.write(&mut sys, 0, 0, &[0x11u8; 64]).unwrap();
        f.write(&mut sys, 0, 64, &[0x22u8; 64]).unwrap();
        sys.flush();
        let a = f.addr(0).line();
        let b = f.addr(64).line();
        // Media stays correct; the device path returns the wrong line.
        sys.memory_mut()
            .arm_fault(a, FirmwareFault::StickyMisdirectedRead { actual: b });
        sys.invalidate_page(a.page());
        let mut buf = [0u8; 64];
        let err = orch.read(&mut fs, &mut sys, &f, 0, 0, &mut buf).unwrap_err();
        assert_eq!(err.page, a.page(), "broken device path must quarantine");
        assert!(orch.is_poisoned(a.page()));
    }
}
