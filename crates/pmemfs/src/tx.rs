//! libpmemobj-style transactions and the software redundancy baselines.
//!
//! Applications update persistent data inside transactions: `begin` persists
//! a STARTED state record, each `write` undo-logs the old content before
//! updating in place, and `commit` persists a COMMITTED record. These
//! persistent metadata writes are why even read-only request paths (e.g.
//! Redis GETs, which run transactions for incremental rehashing) generate
//! NVM write traffic — the effect §IV-B highlights.
//!
//! The software redundancy baselines of the paper's evaluation run at commit
//! (the *transaction boundary*, "TxB"):
//!
//! - [`SwScheme::TxbObject`] (Pangolin-like): per-object checksums — the
//!   committed lines are re-read and checksummed individually, and parity is
//!   *recomputed* per line by reading the stripe's sibling lines (in-place
//!   updates forfeit data-diff parity updates, §IV).
//! - [`SwScheme::TxbPage`] (Mojim/HotPot-like): per-page checksums — every
//!   dirty page is read in full and checksummed, and parity is recomputed at
//!   page granularity by reading the sibling pages.
//!
//! Neither scheme verifies application reads. All checksum/parity work runs
//! on the cores through the normal cache hierarchy — exactly the software
//! cost the paper measures against TVARAK's offload.

use crate::fs::{DaxFs, FileHandle, FsError};
use memsim::addr::{LineAddr, PhysAddr, CACHE_LINE, LINES_PER_PAGE, PAGE};
use memsim::engine::{CorruptionDetected, System};
use tvarak::checksum::{crc32c, line_checksum, page_checksum};
use tvarak::layout::NvmLayout;
use tvarak::parity::xor_into;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Which software redundancy scheme runs at transaction commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwScheme {
    /// No software redundancy (used under Baseline and TVARAK designs).
    #[default]
    None,
    /// Pangolin-like object-granular checksums + per-line parity recompute.
    TxbObject,
    /// Mojim/HotPot-like page-granular checksums + per-page parity recompute.
    TxbPage,
    /// Vilamb-like asynchronous redundancy (Table I): dirty pages are
    /// tracked at commit but checksums/parity are refreshed only every
    /// `epoch_txs` transactions, batching repeated writes to the same page —
    /// at the cost of a vulnerability window in which silent corruption of
    /// freshly written data goes undetected.
    Vilamb {
        /// Transactions per redundancy-refresh epoch.
        epoch_txs: u32,
    },
}

/// Cycles to checksum one 64 B line in software (hardware CRC32 ≈ 8 B/cycle).
const CSUM_CYCLES_PER_LINE: u64 = 8;
/// Cycles to XOR one 64 B line in software (SIMD ≈ 16 B/cycle).
const XOR_CYCLES_PER_LINE: u64 = 4;
/// Instruction overhead charged per transaction begin/commit (libpmemobj's
/// tx_begin/tx_commit execute a few hundred instructions of bookkeeping).
const TX_INSTR: u64 = 60;

/// Transaction state records persisted in the per-core metadata line
/// (0 = idle/fresh).
const STATE_STARTED: u64 = 1;
const STATE_COMMITTED: u64 = 2;
const STATE_ABORTED: u64 = 3;

/// Transaction errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The per-core undo log is full; enlarge `log_bytes_per_core`.
    LogFull,
    /// A verified NVM read failed inside the transaction.
    Corruption(CorruptionDetected),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::LogFull => write!(f, "transaction undo log full"),
            TxError::Corruption(c) => write!(f, "{c}"),
        }
    }
}

impl Error for TxError {}

impl From<CorruptionDetected> for TxError {
    fn from(c: CorruptionDetected) -> Self {
        TxError::Corruption(c)
    }
}

/// Per-pool transaction infrastructure: per-core state lines and undo logs,
/// plus the configured software redundancy scheme.
#[derive(Debug)]
pub struct TxManager {
    scheme: SwScheme,
    layout: NvmLayout,
    meta: FileHandle,
    cores: usize,
    log_bytes_per_core: u64,
    stride: u64,
    /// Vilamb state: pages dirtied since the last epoch refresh.
    vilamb_dirty: BTreeSet<memsim::addr::PageNum>,
    /// Vilamb state: transactions since the last epoch refresh.
    vilamb_txs: u32,
}

impl TxManager {
    /// Allocate transaction metadata (one state page + `log_bytes_per_core`
    /// of undo log per core) in `fs` and DAX-map it, so the hardware
    /// controller covers transaction metadata exactly like application data.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if the pool cannot hold the metadata file.
    pub fn new(
        fs: &mut DaxFs,
        sys: &mut System,
        cores: usize,
        scheme: SwScheme,
        log_bytes_per_core: u64,
    ) -> Result<Self, FsError> {
        let log_bytes = log_bytes_per_core.div_ceil(PAGE as u64) * PAGE as u64;
        let stride = PAGE as u64 + log_bytes;
        let meta = fs.create(sys, stride * cores as u64)?;
        fs.dax_map(sys, &meta);
        Ok(TxManager {
            scheme,
            layout: *fs.layout(),
            meta,
            cores,
            log_bytes_per_core: log_bytes,
            stride,
            vilamb_dirty: BTreeSet::new(),
            vilamb_txs: 0,
        })
    }

    /// Close the current Vilamb epoch: refresh checksums and parity for all
    /// pages dirtied since the last refresh (the background-scrubber work).
    /// A no-op for other schemes.
    ///
    /// # Errors
    ///
    /// Propagates verification failures.
    pub fn vilamb_flush(&mut self, sys: &mut System, core: usize) -> Result<(), TxError> {
        if self.vilamb_dirty.is_empty() {
            return Ok(());
        }
        let pages = std::mem::take(&mut self.vilamb_dirty);
        self.vilamb_txs = 0;
        let layout = self.layout;
        txb_page_over(sys, core, &layout, &pages).map_err(TxError::from)
    }

    /// The configured software scheme.
    pub fn scheme(&self) -> SwScheme {
        self.scheme
    }

    /// Change the software scheme. Benchmark harnesses disable the scheme
    /// during unmeasured preload phases (rebuilding redundancy functionally
    /// afterwards) and re-enable it for the measured phase.
    pub fn set_scheme(&mut self, scheme: SwScheme) {
        self.scheme = scheme;
    }

    /// The metadata file (state lines + undo logs), so harnesses can rebuild
    /// its redundancy after unmeasured preload phases.
    pub fn meta_file(&self) -> &FileHandle {
        &self.meta
    }

    /// Restart recovery: roll back any transaction that was STARTED but
    /// never committed or aborted (e.g. the process died mid-transaction),
    /// using the persistent undo log and log high-water mark. Returns the
    /// cores whose transactions were rolled back.
    ///
    /// # Errors
    ///
    /// Propagates verification failures from the recovery reads/writes.
    pub fn recover_all(&mut self, sys: &mut System) -> Result<Vec<usize>, TxError> {
        let mut rolled_back = Vec::new();
        for core in 0..self.cores {
            let so = self.stride * core as u64;
            if self.meta.read_u64(sys, core, so)? != STATE_STARTED {
                continue;
            }
            let head = self.meta.read_u64(sys, core, so + 8)?;
            let log_off = so + PAGE as u64;
            // Collect entries, then undo newest-first.
            let mut entries = Vec::new();
            let mut off = 0u64;
            while off + 16 <= head {
                let addr = self.meta.read_u64(sys, core, log_off + off)?;
                let len = self.meta.read_u64(sys, core, log_off + off + 8)?;
                if len == 0 || off + 16 + len > head {
                    break; // torn tail entry: its data write never happened
                }
                entries.push((addr, log_off + off + 16, len));
                off += 16 + len;
            }
            for (addr, data_off, len) in entries.into_iter().rev() {
                let mut old = vec![0u8; len as usize];
                self.meta.read(sys, core, data_off, &mut old)?;
                sys.write(core, memsim::PhysAddr(addr), &old)?;
                sys.clwb_range(core, memsim::PhysAddr(addr), len);
            }
            self.meta.write_u64(sys, core, so, STATE_ABORTED)?;
            sys.clwb_range(core, self.meta.addr(so), 8);
            rolled_back.push(core);
        }
        Ok(rolled_back)
    }

    /// Begin a transaction on `core`, persisting the STARTED record.
    ///
    /// # Errors
    ///
    /// Propagates verification failures from the metadata write.
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores`.
    pub fn begin<'a>(&'a mut self, sys: &mut System, core: usize) -> Result<Tx<'a>, TxError> {
        assert!(core < self.cores, "core {core} out of range");
        sys.instr(core, TX_INSTR);
        let state_off = self.stride * core as u64;
        self.meta.write_u64(sys, core, state_off, STATE_STARTED)?;
        self.meta.write_u64(sys, core, state_off + 8, 0)?;
        // Persistence ordering (the libpmemobj discipline): the STARTED
        // record and the cleared log head are forced to media before any of
        // this transaction's logging or data writes can land there, so a
        // crash never finds log entries governed by a stale head.
        sys.clwb_range(core, self.meta.addr(state_off), 16);
        Ok(Tx {
            mgr: self,
            core,
            log_head: 0,
            dirty: Vec::new(),
            durable_pending: Vec::new(),
            finished: false,
        })
    }

    /// Drop volatile bookkeeping after a simulated power loss: Vilamb's
    /// dirty-page set and epoch counter live in DRAM and do not survive a
    /// crash — which is exactly the scheme's vulnerability window (pages
    /// whose redundancy refresh was still owed are no longer even known).
    pub fn clear_volatile(&mut self) {
        self.vilamb_dirty.clear();
        self.vilamb_txs = 0;
    }

    /// Pages whose redundancy refresh Vilamb still owes (the set a crash
    /// right now would leave unverifiable). Empty for other schemes.
    pub fn vilamb_pending_pages(&self) -> Vec<memsim::addr::PageNum> {
        self.vilamb_dirty.iter().copied().collect()
    }
}

/// An open transaction. Must be finished with [`Tx::commit`] or
/// [`Tx::abort`]; dropping an unfinished transaction leaves the STARTED
/// record in place (recoverable, as in libpmemobj).
#[derive(Debug)]
pub struct Tx<'a> {
    mgr: &'a mut TxManager,
    core: usize,
    log_head: u64,
    /// (address, length) of every logged write, for commit-time redundancy.
    dirty: Vec<(PhysAddr, u32)>,
    /// (address, length) of the in-place *data* updates only, which commit
    /// must force to media before the COMMITTED record (redundancy and log
    /// ranges are tracked separately in `dirty`).
    durable_pending: Vec<(PhysAddr, u32)>,
    finished: bool,
}

impl Tx<'_> {
    fn state_off(&self) -> u64 {
        self.mgr.stride * self.core as u64
    }

    fn log_off(&self) -> u64 {
        self.state_off() + PAGE as u64
    }

    /// Transactionally write `data` at `offset` of `file`: the old content
    /// is undo-logged first, then the data is updated in place.
    ///
    /// # Errors
    ///
    /// [`TxError::LogFull`] if the undo log cannot hold the entry;
    /// [`TxError::Corruption`] from verified reads.
    pub fn write(
        &mut self,
        sys: &mut System,
        file: &FileHandle,
        offset: u64,
        data: &[u8],
    ) -> Result<(), TxError> {
        // Split at page boundaries: a file range spanning pages is not
        // physically contiguous (data pages interleave with parity pages),
        // and undo-log entries record physical ranges.
        let mut done = 0usize;
        while done < data.len() {
            let off = offset + done as u64;
            let in_page = (PAGE as u64 - off % PAGE as u64) as usize;
            let n = in_page.min(data.len() - done);
            self.write_in_page(sys, file, off, &data[done..done + n])?;
            done += n;
        }
        Ok(())
    }

    /// One page-bounded transactional write (physically contiguous).
    fn write_in_page(
        &mut self,
        sys: &mut System,
        file: &FileHandle,
        offset: u64,
        data: &[u8],
    ) -> Result<(), TxError> {
        debug_assert!(offset % PAGE as u64 + data.len() as u64 <= PAGE as u64);
        let entry_bytes = 16 + data.len() as u64;
        if self.log_head + entry_bytes > self.mgr.log_bytes_per_core {
            return Err(TxError::LogFull);
        }
        sys.instr(self.core, 25 + data.len() as u64 / 4);
        // Undo log: header (addr, len) + old content.
        let mut old = vec![0u8; data.len()];
        file.read(sys, self.core, offset, &mut old)?;
        let log_base = self.log_off() + self.log_head;
        let target = file.addr(offset);
        self.mgr
            .meta
            .write_u64(sys, self.core, log_base, target.0)?;
        self.mgr
            .meta
            .write_u64(sys, self.core, log_base + 8, data.len() as u64)?;
        self.mgr
            .meta
            .write(sys, self.core, log_base + 16, &old)?;
        // Track log lines + data lines for commit-time redundancy (in
        // page-bounded, physically contiguous chunks).
        let meta = self.mgr.meta;
        // Persistence ordering: the undo entry, then the head that covers
        // it, must be durable before the in-place update can reach the
        // media, so a crash never finds a data write whose undo entry is
        // torn or missing.
        self.clwb_file_range(sys, &meta, log_base, entry_bytes);
        self.track_file_range(&meta, log_base, entry_bytes);
        self.log_head += entry_bytes;
        // Persist the log high-water mark so an interrupted transaction can
        // be rolled back on restart (see `TxManager::recover_all`).
        let so = self.state_off();
        self.mgr.meta.write_u64(sys, self.core, so + 8, self.log_head)?;
        sys.clwb_range(self.core, self.mgr.meta.addr(so + 8), 8);
        self.track(self.mgr.meta.addr(so + 8), 8);
        // In-place update.
        file.write(sys, self.core, offset, data)?;
        self.track(target, data.len() as u32);
        self.durable_pending.push((target, data.len() as u32));
        Ok(())
    }

    /// `clwb` a *file* range in page-bounded physically contiguous chunks
    /// (file pages interleave with parity pages on the media).
    fn clwb_file_range(&self, sys: &mut System, file: &FileHandle, offset: u64, len: u64) {
        let mut done = 0u64;
        while done < len {
            let off = offset + done;
            let in_page = PAGE as u64 - off % PAGE as u64;
            let n = in_page.min(len - done);
            sys.clwb_range(self.core, file.addr(off), n);
            done += n;
        }
    }

    /// Transactionally write a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Tx::write`].
    pub fn write_u64(
        &mut self,
        sys: &mut System,
        file: &FileHandle,
        offset: u64,
        value: u64,
    ) -> Result<(), TxError> {
        self.write(sys, file, offset, &value.to_le_bytes())
    }

    fn track(&mut self, addr: PhysAddr, len: u32) {
        self.dirty.push((addr, len));
    }

    /// Track a file range as page-bounded physical chunks.
    fn track_file_range(&mut self, file: &FileHandle, offset: u64, len: u64) {
        let mut done = 0u64;
        while done < len {
            let off = offset + done;
            let in_page = PAGE as u64 - off % PAGE as u64;
            let n = in_page.min(len - done);
            self.track(file.addr(off), n as u32);
            done += n;
        }
    }

    /// Commit: persist the COMMITTED record, then run the configured
    /// software redundancy scheme over everything the transaction dirtied
    /// (data, undo log, and state metadata).
    ///
    /// # Errors
    ///
    /// Propagates verification failures ([`TxError::Corruption`]).
    pub fn commit(mut self, sys: &mut System) -> Result<(), TxError> {
        sys.instr(self.core, TX_INSTR);
        // Persistence ordering: every in-place data update reaches the
        // media before the COMMITTED record can, so COMMITTED-on-media
        // implies every committed byte is on media.
        let pending = std::mem::take(&mut self.durable_pending);
        for (addr, len) in pending {
            sys.clwb_range(self.core, addr, len as u64);
        }
        let so = self.state_off();
        self.mgr.meta.write_u64(sys, self.core, so, STATE_COMMITTED)?;
        sys.clwb_range(self.core, self.mgr.meta.addr(so), 8);
        let state_addr = self.mgr.meta.addr(so);
        self.track(state_addr, 8);
        self.run_sw_redundancy(sys)?;
        self.finished = true;
        Ok(())
    }

    /// Abort: roll back from the undo log (newest entry first) and persist
    /// the ABORTED record.
    ///
    /// # Errors
    ///
    /// Propagates verification failures.
    pub fn abort(mut self, sys: &mut System) -> Result<(), TxError> {
        sys.instr(self.core, TX_INSTR);
        // Collect entries by walking the log from the start.
        let mut entries = Vec::new();
        let mut off = 0u64;
        while off < self.log_head {
            let base = self.log_off() + off;
            let addr = self.mgr.meta.read_u64(sys, self.core, base)?;
            let len = self.mgr.meta.read_u64(sys, self.core, base + 8)?;
            entries.push((PhysAddr(addr), base + 16, len));
            off += 16 + len;
        }
        for (target, log_data_off, len) in entries.into_iter().rev() {
            let mut old = vec![0u8; len as usize];
            self.mgr
                .meta
                .read(sys, self.core, log_data_off, &mut old)?;
            sys.write(self.core, target, &old)?;
            sys.clwb_range(self.core, target, len);
        }
        let so = self.state_off();
        self.mgr.meta.write_u64(sys, self.core, so, STATE_ABORTED)?;
        sys.clwb_range(self.core, self.mgr.meta.addr(so), 8);
        self.finished = true;
        Ok(())
    }

    fn run_sw_redundancy(&mut self, sys: &mut System) -> Result<(), TxError> {
        let scheme = self.mgr.scheme;
        let layout = self.mgr.layout;
        if let SwScheme::Vilamb { epoch_txs } = scheme {
            // Asynchronous: only record dirty pages now (cheap software
            // dirty tracking); refresh when the epoch closes.
            for &(addr, len) in &self.dirty {
                let first = addr.line().0;
                let last = PhysAddr(addr.0 + len.max(1) as u64 - 1).line().0;
                for l in first..=last {
                    let line = LineAddr(l);
                    if layout.is_data_line(line) {
                        self.mgr.vilamb_dirty.insert(line.page());
                    }
                }
            }
            sys.instr(self.core, 10); // dirty-bit bookkeeping
            self.mgr.vilamb_txs += 1;
            if self.mgr.vilamb_txs >= epoch_txs {
                let core = self.core;
                return self.mgr.vilamb_flush(sys, core);
            }
            return Ok(());
        }
        sw_redundancy_update(sys, self.core, scheme, &layout, &self.dirty).map_err(TxError::from)
    }
}

/// Run a software redundancy scheme over explicitly written ranges.
///
/// [`Tx::commit`] uses this for transactional applications; DAX applications
/// without transactions (fio's libpmem engine, stream) call it directly after
/// each write, which is when they "inform the interposing library after
/// completing a write" (§IV).
///
/// # Errors
///
/// Propagates [`CorruptionDetected`] from verified fills (only possible when
/// combined with a hardware controller, which the paper's software designs
/// are not).
pub fn sw_redundancy_update(
    sys: &mut System,
    core: usize,
    scheme: SwScheme,
    layout: &NvmLayout,
    ranges: &[(PhysAddr, u32)],
) -> Result<(), CorruptionDetected> {
    let mut lines = BTreeSet::new();
    for &(addr, len) in ranges {
        let first = addr.line().0;
        let last = PhysAddr(addr.0 + len.max(1) as u64 - 1).line().0;
        for l in first..=last {
            lines.insert(LineAddr(l));
        }
    }
    match scheme {
        SwScheme::None => Ok(()),
        SwScheme::TxbObject => txb_object(sys, core, layout, &lines),
        SwScheme::TxbPage => txb_page(sys, core, layout, &lines),
        // Vilamb needs manager state (epoch tracking); direct library
        // notifications without a TxManager contribute nothing until the
        // next epoch refresh, which is exactly its vulnerability window.
        SwScheme::Vilamb { .. } => Ok(()),
    }
}

/// Pangolin-like: checksum each dirty line; recompute its parity line by
/// reading the stripe's sibling lines.
fn txb_object(
    sys: &mut System,
    core: usize,
    layout: &NvmLayout,
    dirty: &BTreeSet<LineAddr>,
) -> Result<(), CorruptionDetected> {
    for &line in dirty {
        if !layout.is_data_line(line) {
            continue;
        }
        let mut data = [0u8; CACHE_LINE];
        sys.read(core, line.base(), &mut data)?;
        sys.compute(core, CSUM_CYCLES_PER_LINE);
        let csum = line_checksum(&data);
        let (cs_line, slot) = layout.cl_csum_loc(line);
        let cs_addr = PhysAddr(cs_line.base().0 + slot as u64 * 4);
        sys.write(core, cs_addr, &csum.to_le_bytes())?;
        // Parity recompute for this line (no data diff available).
        let mut par = data;
        for sib in layout.sibling_lines_of(line) {
            let mut s = [0u8; CACHE_LINE];
            sys.read(core, sib.base(), &mut s)?;
            sys.compute(core, XOR_CYCLES_PER_LINE);
            xor_into(&mut par, &s);
        }
        sys.write(core, layout.parity_line_of(line).base(), &par)?;
    }
    Ok(())
}

/// Mojim/HotPot-like: checksum each dirty page in full; recompute its
/// stripe's parity at page granularity by reading the sibling pages.
fn txb_page(
    sys: &mut System,
    core: usize,
    layout: &NvmLayout,
    dirty: &BTreeSet<LineAddr>,
) -> Result<(), CorruptionDetected> {
    let pages: BTreeSet<_> = dirty
        .iter()
        .filter(|l| layout.is_data_line(**l))
        .map(|l| l.page())
        .collect();
    txb_page_over(sys, core, layout, &pages)
}

/// Page-granular checksum + parity refresh over an explicit page set (used
/// by TxB-Page at commit and by Vilamb at epoch close).
fn txb_page_over(
    sys: &mut System,
    core: usize,
    layout: &NvmLayout,
    pages: &BTreeSet<memsim::addr::PageNum>,
) -> Result<(), CorruptionDetected> {
    for &page in pages {
        // Read the whole page and checksum it.
        let mut bytes = vec![0u8; PAGE];
        for i in 0..LINES_PER_PAGE {
            sys.read(
                core,
                page.line(i).base(),
                &mut bytes[i * CACHE_LINE..(i + 1) * CACHE_LINE],
            )?;
        }
        sys.compute(core, CSUM_CYCLES_PER_LINE * LINES_PER_PAGE as u64);
        let csum = page_checksum(&bytes);
        debug_assert_eq!(csum, crc32c(&bytes));
        let (cs_line, slot) = layout.page_csum_loc(page);
        let cs_addr = PhysAddr(cs_line.base().0 + slot as u64 * 4);
        sys.write(core, cs_addr, &csum.to_le_bytes())?;
        // Recompute the stripe's parity page line by line.
        for i in 0..LINES_PER_PAGE {
            let line = page.line(i);
            let mut par = [0u8; CACHE_LINE];
            par.copy_from_slice(&bytes[i * CACHE_LINE..(i + 1) * CACHE_LINE]);
            for sib in layout.sibling_lines_of(line) {
                let mut s = [0u8; CACHE_LINE];
                sys.read(core, sib.base(), &mut s)?;
                sys.compute(core, XOR_CYCLES_PER_LINE);
                xor_into(&mut par, &s);
            }
            sys.write(core, layout.parity_line_of(line).base(), &par)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::config::SystemConfig;
    use memsim::engine::NullHooks;
    use tvarak::layout::NvmLayout;

    fn setup(scheme: SwScheme) -> (System, DaxFs, TxManager, FileHandle) {
        let cfg = SystemConfig::small();
        let layout = NvmLayout::new(cfg.nvm.dimms, 64);
        let mut sys = System::new(cfg, Box::new(NullHooks));
        let mut fs = DaxFs::new(layout, &mut sys);
        let mut txm = TxManager::new(&mut fs, &mut sys, 2, scheme, 64 * 1024).unwrap();
        let f = fs.create(&mut sys, 8 * 4096).unwrap();
        fs.dax_map(&mut sys, &f);
        let _ = &mut txm;
        (sys, fs, txm, f)
    }

    #[test]
    fn committed_write_is_visible() {
        let (mut sys, _fs, mut txm, f) = setup(SwScheme::None);
        let mut tx = txm.begin(&mut sys, 0).unwrap();
        tx.write(&mut sys, &f, 100, b"durable").unwrap();
        tx.commit(&mut sys).unwrap();
        let mut buf = [0u8; 7];
        f.read(&mut sys, 0, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"durable");
    }

    #[test]
    fn abort_rolls_back_all_writes_in_reverse() {
        let (mut sys, _fs, mut txm, f) = setup(SwScheme::None);
        f.write(&mut sys, 0, 0, b"AAAA").unwrap();
        let mut tx = txm.begin(&mut sys, 0).unwrap();
        tx.write(&mut sys, &f, 0, b"BBBB").unwrap();
        tx.write(&mut sys, &f, 0, b"CCCC").unwrap();
        tx.write(&mut sys, &f, 64, b"DDDD").unwrap();
        tx.abort(&mut sys).unwrap();
        let mut buf = [0u8; 4];
        f.read(&mut sys, 0, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"AAAA");
        f.read(&mut sys, 0, 64, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn log_full_is_reported() {
        let cfg = SystemConfig::small();
        let layout = NvmLayout::new(cfg.nvm.dimms, 64);
        let mut sys = System::new(cfg, Box::new(NullHooks));
        let mut fs = DaxFs::new(layout, &mut sys);
        let mut txm = TxManager::new(&mut fs, &mut sys, 1, SwScheme::None, 8192).unwrap();
        let f = fs.create(&mut sys, 4096).unwrap();
        let mut tx = txm.begin(&mut sys, 0).unwrap();
        // Each entry is a 16-byte header + data: two 4 KB entries exceed the
        // 8 KB log.
        let big = vec![0u8; 4096];
        tx.write(&mut sys, &f, 0, &big).unwrap();
        let err = tx.write(&mut sys, &f, 0, &big).unwrap_err();
        assert_eq!(err, TxError::LogFull);
    }

    #[test]
    fn txb_object_maintains_cl_checksums_and_parity() {
        let (mut sys, fs, mut txm, f) = setup(SwScheme::TxbObject);
        let mut tx = txm.begin(&mut sys, 0).unwrap();
        tx.write(&mut sys, &f, 256, &[0x77u8; 100]).unwrap();
        tx.commit(&mut sys).unwrap();
        sys.flush();
        assert!(fs.scrub_cl(&sys, &f).is_empty(), "CL checksums consistent");
        assert!(fs.scrub_parity(&sys, &f).is_empty(), "parity consistent");
        // Redundancy traffic was classified as such.
        assert!(sys.stats().counters.nvm_redundancy() > 0);
    }

    #[test]
    fn txb_page_maintains_page_checksums_and_parity() {
        let (mut sys, fs, mut txm, f) = setup(SwScheme::TxbPage);
        let mut tx = txm.begin(&mut sys, 0).unwrap();
        tx.write(&mut sys, &f, 0, &[0x31u8; 64]).unwrap();
        tx.write(&mut sys, &f, 5000, &[0x32u8; 64]).unwrap();
        tx.commit(&mut sys).unwrap();
        sys.flush();
        assert!(fs.scrub_pages(&sys, &f).is_empty(), "page checksums consistent");
        assert!(fs.scrub_parity(&sys, &f).is_empty(), "parity consistent");
    }

    #[test]
    fn txb_page_costs_more_than_txb_object_for_small_writes() {
        let run = |scheme| {
            let (mut sys, _fs, mut txm, f) = setup(scheme);
            sys.reset_stats();
            for i in 0..32u64 {
                let mut tx = txm.begin(&mut sys, 0).unwrap();
                tx.write_u64(&mut sys, &f, i * 8, i).unwrap();
                tx.commit(&mut sys).unwrap();
            }
            sys.stats().counters.cache_total()
        };
        let obj = run(SwScheme::TxbObject);
        let page = run(SwScheme::TxbPage);
        let none = run(SwScheme::None);
        assert!(obj > none, "object scheme adds cache work");
        assert!(page > obj * 2, "page scheme reads whole pages: {page} vs {obj}");
    }

    #[test]
    fn interrupted_tx_rolls_back_on_restart_recovery() {
        let (mut sys, _fs, mut txm, f) = setup(SwScheme::None);
        f.write(&mut sys, 0, 0, b"CONSISTENT-STATE").unwrap();
        // A transaction dies mid-flight (dropped without commit/abort).
        {
            let mut tx = txm.begin(&mut sys, 0).unwrap();
            tx.write(&mut sys, &f, 0, b"TORN").unwrap();
            tx.write(&mut sys, &f, 100, &[0xeeu8; 32]).unwrap();
            // process "crashes" here: the Tx is dropped unfinished
        }
        let mut buf = [0u8; 4];
        f.read(&mut sys, 0, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"TORN", "in-place update landed before the crash");
        // Restart: recovery rolls the incomplete transaction back.
        let rolled = txm.recover_all(&mut sys).unwrap();
        assert_eq!(rolled, vec![0]);
        let mut buf = [0u8; 16];
        f.read(&mut sys, 0, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"CONSISTENT-STATE");
        let mut buf = [0u8; 32];
        f.read(&mut sys, 0, 100, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        // Idempotent: nothing left to roll back.
        assert!(txm.recover_all(&mut sys).unwrap().is_empty());
    }

    #[test]
    fn committed_tx_is_not_rolled_back_by_recovery() {
        let (mut sys, _fs, mut txm, f) = setup(SwScheme::None);
        let mut tx = txm.begin(&mut sys, 0).unwrap();
        tx.write(&mut sys, &f, 0, b"durable!").unwrap();
        tx.commit(&mut sys).unwrap();
        assert!(txm.recover_all(&mut sys).unwrap().is_empty());
        let mut buf = [0u8; 8];
        f.read(&mut sys, 0, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable!");
    }

    #[test]
    fn vilamb_defers_redundancy_until_epoch_close() {
        let (mut sys, fs, mut txm, f) = setup(SwScheme::Vilamb { epoch_txs: 4 });
        // Three commits: inside the epoch, redundancy is stale (the
        // vulnerability window Vilamb accepts).
        for i in 0..3u64 {
            let mut tx = txm.begin(&mut sys, 0).unwrap();
            tx.write(&mut sys, &f, i * 4096, &[0x44u8; 64]).unwrap();
            tx.commit(&mut sys).unwrap();
        }
        sys.flush();
        assert!(
            !fs.scrub_pages(&sys, &f).is_empty(),
            "inside the epoch, page checksums must be stale"
        );
        // Fourth commit closes the epoch: everything refreshed.
        let mut tx = txm.begin(&mut sys, 0).unwrap();
        tx.write(&mut sys, &f, 3 * 4096, &[0x45u8; 64]).unwrap();
        tx.commit(&mut sys).unwrap();
        sys.flush();
        assert!(fs.scrub_pages(&sys, &f).is_empty());
        assert!(fs.scrub_parity(&sys, &f).is_empty());
    }

    #[test]
    fn vilamb_flush_closes_partial_epoch() {
        let (mut sys, fs, mut txm, f) = setup(SwScheme::Vilamb { epoch_txs: 1000 });
        let mut tx = txm.begin(&mut sys, 0).unwrap();
        tx.write(&mut sys, &f, 0, &[0x46u8; 64]).unwrap();
        tx.commit(&mut sys).unwrap();
        sys.flush();
        assert!(!fs.scrub_pages(&sys, &f).is_empty());
        txm.vilamb_flush(&mut sys, 0).unwrap();
        sys.flush();
        assert!(fs.scrub_pages(&sys, &f).is_empty());
    }

    #[test]
    fn vilamb_batches_repeated_writes_to_same_page() {
        // 64 writes to one page: Vilamb pays the page work once per epoch,
        // TxB-Page pays it per transaction.
        let cache_work = |scheme| {
            let (mut sys, _fs, mut txm, f) = setup(scheme);
            sys.reset_stats();
            for i in 0..64u64 {
                let mut tx = txm.begin(&mut sys, 0).unwrap();
                tx.write(&mut sys, &f, i * 64, &[i as u8; 64]).unwrap();
                tx.commit(&mut sys).unwrap();
            }
            txm.vilamb_flush(&mut sys, 0).unwrap();
            sys.stats().counters.cache_total()
        };
        let vilamb = cache_work(SwScheme::Vilamb { epoch_txs: 64 });
        let txb_page = cache_work(SwScheme::TxbPage);
        assert!(
            vilamb * 4 < txb_page,
            "vilamb must amortize page work: {vilamb} vs {txb_page}"
        );
    }

    #[test]
    fn get_style_empty_tx_still_writes_metadata() {
        let (mut sys, _fs, mut txm, _f) = setup(SwScheme::None);
        sys.reset_stats();
        let tx = txm.begin(&mut sys, 0).unwrap();
        tx.commit(&mut sys).unwrap();
        sys.flush();
        // STARTED + COMMITTED records reached NVM.
        assert!(sys.stats().counters.nvm_data_writes >= 1);
    }
}
