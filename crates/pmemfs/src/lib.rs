//! # pmemfs — the DAX file-system layer
//!
//! The software side of the paper's system: a persistent pool over the
//! simulated NVM, DAX file mapping (which registers ranges with the TVARAK
//! controller and converts checksum granularity, §III-C), libpmemobj-style
//! transactions with the paper's software redundancy baselines
//! (TxB-Object-Csums, TxB-Page-Csums), firmware fault injection, and the
//! OS-side recovery path.
//!
//! ```
//! use memsim::config::SystemConfig;
//! use memsim::engine::{NullHooks, System};
//! use pmemfs::fs::DaxFs;
//! use tvarak::layout::NvmLayout;
//!
//! let cfg = SystemConfig::small();
//! let layout = NvmLayout::new(cfg.nvm.dimms, 32);
//! let mut sys = System::new(cfg, Box::new(NullHooks));
//! let mut fs = DaxFs::new(layout, &mut sys);
//! let file = fs.create(&mut sys, 16 * 1024)?;
//! file.write(&mut sys, 0, 0, b"hello dax")?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod fs;
pub mod rebuild;
pub mod recover;
pub mod tx;

pub use fault::Fault;
pub use fs::{DaxFs, FileHandle, FsError, RecoveryError};
pub use rebuild::{PoolState, ReplacementManager};
pub use recover::{Poisoned, RecoveryEvent, RecoveryOrchestrator};
pub use tx::{sw_redundancy_update, SwScheme, Tx, TxError, TxManager};
