//! Device-replacement lifecycle: fail → degraded serving → hot-spare attach
//! → online resilver → healthy.
//!
//! The [`ReplacementManager`] is the OS-side owner of a pool's whole-device
//! fault handling, the counterpart of the per-page
//! [`RecoveryOrchestrator`](crate::recover::RecoveryOrchestrator):
//!
//! - [`fail_device`](ReplacementManager::fail_device) quiesces the cache
//!   hierarchy (so the firmware shadow syndromes reflect every acknowledged
//!   write) and fails the bank. The pool is now *degraded*: reads of the
//!   failed bank reconstruct from parity on the fly, writes are absorbed
//!   into the syndromes — serving continues, at reduced margin.
//! - [`attach_spare`](ReplacementManager::attach_spare) binds a
//!   [`Rebuilder`] to the bank and the pool enters *rebuilding*.
//! - Each foreground operation reported via
//!   [`on_op`](ReplacementManager::on_op) feeds the maintenance token
//!   bucket; granted rebuild steps resilver one page at a time through
//!   [`step_rebuild`](ReplacementManager::step_rebuild), racing foreground
//!   writes safely (write-intent lines are skipped, never clobbered).
//! - A page that cannot be reconstructed (second concurrent fault at
//!   P-only, third at P+Q) comes back as [`RebuildStep::Abandoned`]: its
//!   media is already poisoned and the caller must quarantine it with the
//!   orchestrator — the fail-closed path, never fabricated data.
//!
//! The manager finishes a resilver eagerly: when the last page of the bank
//! is processed, the bank is returned to Healthy within the same step, so
//! [`pool_state`](ReplacementManager::pool_state) observed after each
//! operation cleanly delimits the healthy / degraded / rebuilding /
//! recovered phases a campaign wants to report on.

use memsim::addr::PageNum;
use memsim::engine::System;
use memsim::BankState;
use tvarak::qos::{MaintGrant, MaintenanceScheduler, QosConfig};
use tvarak::rebuild::{RebuildStep, Rebuilder};

/// Pool-level redundancy state, derived from device lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolState {
    /// All devices healthy; full redundancy margin.
    Healthy,
    /// At least one device failed with no spare attached; serving from
    /// parity reconstruct-on-read.
    Degraded,
    /// A hot spare is attached and the resilver is in progress.
    Rebuilding,
}

/// Owns the device-replacement lifecycle for one pool: failed-bank
/// tracking, the active [`Rebuilder`], and the shared maintenance QoS
/// scheduler arbitrating rebuild against scrub.
#[derive(Debug)]
pub struct ReplacementManager {
    scheduler: MaintenanceScheduler,
    rebuilder: Option<Rebuilder>,
    failed: Vec<usize>,
    devices_failed: u64,
    rebuilds_completed: u64,
    pages_resilvered: u64,
    pages_abandoned: u64,
    lines_reconstructed: u64,
    lines_already_live: u64,
}

impl ReplacementManager {
    /// A manager with an idle scheduler configured by `qos`.
    pub fn new(qos: QosConfig) -> Self {
        ReplacementManager {
            scheduler: MaintenanceScheduler::new(qos),
            rebuilder: None,
            failed: Vec::new(),
            devices_failed: 0,
            rebuilds_completed: 0,
            pages_resilvered: 0,
            pages_abandoned: 0,
            lines_reconstructed: 0,
            lines_already_live: 0,
        }
    }

    /// Current pool state. Rebuilding wins over Degraded when both apply
    /// (a second device down while a first resilvers).
    pub fn pool_state(&self) -> PoolState {
        if self.rebuilder.is_some() {
            PoolState::Rebuilding
        } else if self.failed.is_empty() {
            PoolState::Healthy
        } else {
            PoolState::Degraded
        }
    }

    /// Fail `bank` as a whole device. Flushes the cache hierarchy *first*
    /// so every acknowledged write has reached the firmware (and its shadow
    /// syndromes) before the media disappears — a clean fail-stop. The pool
    /// keeps serving degraded afterwards.
    ///
    /// # Panics
    ///
    /// Panics if firmware RAID is unconfigured or the bank is not Healthy
    /// (an already-failed or mid-resilver device cannot fail "again").
    pub fn fail_device(&mut self, sys: &mut System, bank: usize) {
        sys.flush();
        sys.memory_mut().fail_bank(bank);
        self.failed.push(bank);
        self.devices_failed += 1;
    }

    /// Attach a hot spare to failed `bank` and start its resilver. Only one
    /// resilver runs at a time; with multiple failed banks, attach and
    /// finish them one after another.
    ///
    /// # Panics
    ///
    /// Panics if a resilver is already running, or `bank` is not Failed.
    pub fn attach_spare(&mut self, sys: &mut System, bank: usize) {
        assert!(
            self.rebuilder.is_none(),
            "a resilver is already in progress"
        );
        sys.memory_mut().attach_spare(bank);
        self.rebuilder = Some(Rebuilder::new(sys, bank));
        self.failed.retain(|&b| b != bank);
    }

    /// Whether a resilver has unfinished pages (drives the scheduler's
    /// rebuild priority).
    pub fn rebuild_pending(&self) -> bool {
        self.rebuilder.as_ref().is_some_and(|r| !r.is_done())
    }

    /// Account one foreground operation and ask the shared scheduler for a
    /// maintenance grant. Call exactly once per foreground op; on
    /// [`MaintGrant::Rebuild`] call
    /// [`step_rebuild`](Self::step_rebuild), on [`MaintGrant::Scrub`] run
    /// one budgeted scrub step.
    pub fn on_op(&mut self, scrub_pending: bool) -> Option<MaintGrant> {
        self.scheduler.on_op(self.rebuild_pending(), scrub_pending)
    }

    /// Run one granted resilver step. Returns `None` when no resilver is
    /// active. On [`RebuildStep::Abandoned`] the page's media is poisoned
    /// and cached copies dropped; the caller must quarantine it with the
    /// recovery orchestrator. When the step processes the bank's last page
    /// the rebuild is finalized eagerly (the bank is Healthy before this
    /// returns).
    pub fn step_rebuild(&mut self, sys: &mut System, core: usize) -> Option<RebuildStep> {
        let r = self.rebuilder.as_mut()?;
        let step = r.step(sys, core);
        let (processed, total) = r.progress();
        if step != RebuildStep::Done && processed == total {
            // Last page just processed: finish within the same grant so the
            // observed pool state flips to recovered without a dead step.
            let done = r.step(sys, core);
            debug_assert_eq!(done, RebuildStep::Done);
        }
        if r.is_done() {
            self.pages_resilvered += r.pages_resilvered();
            self.pages_abandoned += r.pages_abandoned();
            self.lines_reconstructed += r.lines_reconstructed();
            self.lines_already_live += r.lines_already_live();
            self.rebuilds_completed += 1;
            self.rebuilder = None;
        }
        Some(step)
    }

    /// `(processed, total)` page progress of the active resilver, if any.
    pub fn progress(&self) -> Option<(u64, u64)> {
        self.rebuilder.as_ref().map(|r| r.progress())
    }

    /// Banks currently failed with no spare attached.
    pub fn failed_banks(&self) -> &[usize] {
        &self.failed
    }

    /// Whole devices failed over the pool's lifetime.
    pub fn devices_failed(&self) -> u64 {
        self.devices_failed
    }

    /// Resilvers driven to completion.
    pub fn rebuilds_completed(&self) -> u64 {
        self.rebuilds_completed
    }

    /// Pages fully resilvered across all rebuilds (including the active one).
    pub fn pages_resilvered(&self) -> u64 {
        self.pages_resilvered
            + self.rebuilder.as_ref().map_or(0, |r| r.pages_resilvered())
    }

    /// Pages abandoned (poisoned, quarantine-bound) across all rebuilds.
    pub fn pages_abandoned(&self) -> u64 {
        self.pages_abandoned
            + self.rebuilder.as_ref().map_or(0, |r| r.pages_abandoned())
    }

    /// Dead lines restored by reconstruction across all rebuilds.
    pub fn lines_reconstructed(&self) -> u64 {
        self.lines_reconstructed
            + self.rebuilder.as_ref().map_or(0, |r| r.lines_reconstructed())
    }

    /// Lines the resilver found already live from foreground write-intent.
    pub fn lines_already_live(&self) -> u64 {
        self.lines_already_live
            + self.rebuilder.as_ref().map_or(0, |r| r.lines_already_live())
    }

    /// Times the starvation guard force-granted a rebuild into debt.
    pub fn backpressure_events(&self) -> u64 {
        self.scheduler.backpressure_events()
    }

    /// The shared maintenance scheduler (for balance inspection).
    pub fn scheduler(&self) -> &MaintenanceScheduler {
        &self.scheduler
    }

    /// Sanity cross-check: every bank the manager believes failed or
    /// rebuilding matches the firmware's view. Cheap enough for test
    /// assertions and campaign invariants.
    pub fn consistent_with(&self, sys: &System) -> bool {
        let mem = sys.memory();
        if !mem.raid_enabled() {
            return self.failed.is_empty() && self.rebuilder.is_none();
        }
        self.failed
            .iter()
            .all(|&b| mem.bank_state(b) == BankState::Failed)
    }
}

/// Pages a campaign or driver must quarantine after a step: convenience
/// extraction so callers do not match on [`RebuildStep`] inline.
pub fn abandoned_page(step: &RebuildStep) -> Option<PageNum> {
    match step {
        RebuildStep::Abandoned(p) => Some(*p),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::DaxFs;
    use memsim::config::SystemConfig;
    use memsim::engine::{NullHooks, System};
    use memsim::RaidLevel;
    use tvarak::layout::NvmLayout;

    fn pool() -> (System, DaxFs, NvmLayout) {
        let cfg = SystemConfig::small();
        let layout = NvmLayout::new(cfg.nvm.dimms, 16);
        let mut sys = System::new(cfg, Box::new(NullHooks));
        let fs = DaxFs::new(layout, &mut sys);
        let striped = layout.geometry().total_pages_for(16);
        sys.memory_mut().configure_raid(striped, RaidLevel::P);
        (sys, fs, layout)
    }

    #[test]
    fn lifecycle_healthy_degraded_rebuilding_healthy() {
        let (mut sys, mut fs, _layout) = pool();
        let f = fs.create(&mut sys, 8 * 1024).unwrap();
        f.write(&mut sys, 0, 0, &[7u8; 4096]).unwrap();
        sys.flush();

        let mut mgr = ReplacementManager::new(QosConfig::default());
        assert_eq!(mgr.pool_state(), PoolState::Healthy);

        mgr.fail_device(&mut sys, 1);
        assert_eq!(mgr.pool_state(), PoolState::Degraded);
        assert_eq!(mgr.failed_banks(), &[1]);
        // Degraded serving: reads still return the written data.
        let mut buf = [0u8; 64];
        f.read(&mut sys, 0, 0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);

        mgr.attach_spare(&mut sys, 1);
        assert_eq!(mgr.pool_state(), PoolState::Rebuilding);
        let mut steps = 0;
        while mgr.rebuild_pending() {
            mgr.step_rebuild(&mut sys, 0).unwrap();
            steps += 1;
            assert!(steps < 10_000, "resilver must terminate");
        }
        assert_eq!(mgr.pool_state(), PoolState::Healthy);
        assert_eq!(mgr.rebuilds_completed(), 1);
        assert!(mgr.pages_resilvered() > 0);
        assert_eq!(mgr.pages_abandoned(), 0);
        assert!(mgr.consistent_with(&sys));
        // Post-resilver reads serve the original data from media.
        let mut buf = [0u8; 64];
        f.read(&mut sys, 0, 0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
    }

    #[test]
    fn scheduler_paces_rebuild_against_foreground_ops() {
        let (mut sys, mut fs, _layout) = pool();
        let f = fs.create(&mut sys, 8 * 1024).unwrap();
        f.write(&mut sys, 0, 0, &[9u8; 4096]).unwrap();
        sys.flush();

        let mut mgr = ReplacementManager::new(QosConfig {
            refill_per_op: 1,
            burst: 4,
            rebuild_page_cost: 4,
            ..QosConfig::default()
        });
        mgr.fail_device(&mut sys, 0);
        mgr.attach_spare(&mut sys, 0);

        // Steady state: one page per 4 foreground ops, never more than one
        // grant per op.
        let mut ops = 0u64;
        while mgr.rebuild_pending() {
            ops += 1;
            assert!(ops < 100_000, "starved resilver");
            match mgr.on_op(false) {
                Some(MaintGrant::Rebuild) => {
                    mgr.step_rebuild(&mut sys, 0);
                }
                Some(MaintGrant::Scrub) => panic!("no scrub work was pending"),
                None => {}
            }
        }
        let total = mgr.pages_resilvered();
        assert!(total > 0);
        // Pacing: at cost 4 / refill 1 the resilver cannot beat one page
        // per 4 ops by more than the banked burst.
        assert!(ops + 4 >= 4 * total, "resilver outran its token budget");
        assert_eq!(mgr.backpressure_events(), 0);
    }
}
