//! File-level firmware fault injection (the §II-A bug taxonomy, targeted at
//! file offsets instead of raw physical lines).

use crate::fs::FileHandle;
use memsim::engine::System;
use memsim::mem::FirmwareFault;

/// A firmware bug to arm against a file location (one-shot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next write to the line containing `offset` is acknowledged but
    /// never reaches the media (Fig. 1).
    LostWrite {
        /// Byte offset within the file.
        offset: u64,
    },
    /// The next write to the line containing `offset` lands on the line
    /// containing `victim_offset` instead (Fig. 2).
    MisdirectedWrite {
        /// Byte offset within the file whose write is misdirected.
        offset: u64,
        /// Byte offset within the file that gets clobbered.
        victim_offset: u64,
    },
    /// The next read of the line containing `offset` returns the content of
    /// the line containing `source_offset`.
    MisdirectedRead {
        /// Byte offset within the file whose read is misdirected.
        offset: u64,
        /// Byte offset within the file whose content is returned instead.
        source_offset: u64,
    },
}

impl std::fmt::Display for Fault {
    /// Canonical CLI/env syntax, parseable back by [`FromStr`]:
    ///
    /// ```text
    /// lost-write@128
    /// misdir-write@128->256      (write for 128 lands on 256)
    /// misdir-read@128<-256       (read of 128 returns 256's content)
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::LostWrite { offset } => write!(f, "lost-write@{offset}"),
            Fault::MisdirectedWrite {
                offset,
                victim_offset,
            } => write!(f, "misdir-write@{offset}->{victim_offset}"),
            Fault::MisdirectedRead {
                offset,
                source_offset,
            } => write!(f, "misdir-read@{offset}<-{source_offset}"),
        }
    }
}

/// Error parsing a [`Fault`] from its CLI/env syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError(String);

impl std::fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad fault spec {:?} (expected lost-write@OFF, \
             misdir-write@OFF->VICTIM, or misdir-read@OFF<-SRC)",
            self.0
        )
    }
}

impl std::error::Error for ParseFaultError {}

impl std::str::FromStr for Fault {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseFaultError(s.to_string());
        let (kind, rest) = s.split_once('@').ok_or_else(err)?;
        let off = |t: &str| t.trim().parse::<u64>().map_err(|_| err());
        match kind.trim() {
            "lost-write" => Ok(Fault::LostWrite { offset: off(rest)? }),
            "misdir-write" => {
                let (a, b) = rest.split_once("->").ok_or_else(err)?;
                Ok(Fault::MisdirectedWrite {
                    offset: off(a)?,
                    victim_offset: off(b)?,
                })
            }
            "misdir-read" => {
                let (a, b) = rest.split_once("<-").ok_or_else(err)?;
                Ok(Fault::MisdirectedRead {
                    offset: off(a)?,
                    source_offset: off(b)?,
                })
            }
            _ => Err(err()),
        }
    }
}

/// Arm `fault` against `file` in the device firmware.
pub fn inject(sys: &mut System, file: &FileHandle, fault: Fault) {
    match fault {
        Fault::LostWrite { offset } => {
            sys.memory_mut()
                .arm_fault(file.addr(offset).line(), FirmwareFault::LostWrite);
        }
        Fault::MisdirectedWrite {
            offset,
            victim_offset,
        } => {
            let actual = file.addr(victim_offset).line();
            sys.memory_mut()
                .arm_fault(file.addr(offset).line(), FirmwareFault::MisdirectedWrite { actual });
        }
        Fault::MisdirectedRead {
            offset,
            source_offset,
        } => {
            let actual = file.addr(source_offset).line();
            sys.memory_mut()
                .arm_fault(file.addr(offset).line(), FirmwareFault::MisdirectedRead { actual });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::DaxFs;
    use memsim::config::SystemConfig;
    use memsim::engine::NullHooks;
    use tvarak::layout::NvmLayout;

    #[test]
    fn fault_display_fromstr_roundtrip() {
        let cases = [
            Fault::LostWrite { offset: 128 },
            Fault::MisdirectedWrite {
                offset: 128,
                victim_offset: 256,
            },
            Fault::MisdirectedRead {
                offset: 128,
                source_offset: 256,
            },
        ];
        for fault in cases {
            let s = fault.to_string();
            assert_eq!(s.parse::<Fault>().unwrap(), fault, "roundtrip of {s}");
        }
        assert_eq!(
            "lost-write@128".parse::<Fault>().unwrap(),
            Fault::LostWrite { offset: 128 }
        );
        assert_eq!(
            "misdir-write@128->256".parse::<Fault>().unwrap(),
            Fault::MisdirectedWrite { offset: 128, victim_offset: 256 }
        );
        assert_eq!(
            "misdir-read@128<-256".parse::<Fault>().unwrap(),
            Fault::MisdirectedRead { offset: 128, source_offset: 256 }
        );
        for bad in ["", "lost-write", "lost-write@x", "misdir-write@1",
                    "misdir-write@1<-2", "misdir-read@1->2", "gamma-ray@9"] {
            assert!(bad.parse::<Fault>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn injected_lost_write_fires_on_writeback() {
        let cfg = SystemConfig::small();
        let layout = NvmLayout::new(cfg.nvm.dimms, 8);
        let mut sys = System::new(cfg, Box::new(NullHooks));
        let mut fs = DaxFs::new(layout, &mut sys);
        let f = fs.create(&mut sys, 4096).unwrap();
        inject(&mut sys, &f, Fault::LostWrite { offset: 128 });
        f.write(&mut sys, 0, 128, &[1u8; 64]).unwrap();
        sys.flush();
        // Baseline has no checksums: the loss is silent.
        assert_eq!(sys.memory().peek_line(f.addr(128).line()), [0u8; 64]);
        assert_eq!(sys.memory().fired_faults().len(), 1);
    }
}
