//! File-level firmware fault injection (the §II-A bug taxonomy, targeted at
//! file offsets instead of raw physical lines).

use crate::fs::FileHandle;
use memsim::engine::System;
use memsim::mem::FirmwareFault;

/// A firmware bug to arm against a file location (one-shot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next write to the line containing `offset` is acknowledged but
    /// never reaches the media (Fig. 1).
    LostWrite {
        /// Byte offset within the file.
        offset: u64,
    },
    /// The next write to the line containing `offset` lands on the line
    /// containing `victim_offset` instead (Fig. 2).
    MisdirectedWrite {
        /// Byte offset within the file whose write is misdirected.
        offset: u64,
        /// Byte offset within the file that gets clobbered.
        victim_offset: u64,
    },
    /// The next read of the line containing `offset` returns the content of
    /// the line containing `source_offset`.
    MisdirectedRead {
        /// Byte offset within the file whose read is misdirected.
        offset: u64,
        /// Byte offset within the file whose content is returned instead.
        source_offset: u64,
    },
}

/// Arm `fault` against `file` in the device firmware.
pub fn inject(sys: &mut System, file: &FileHandle, fault: Fault) {
    match fault {
        Fault::LostWrite { offset } => {
            sys.memory_mut()
                .arm_fault(file.addr(offset).line(), FirmwareFault::LostWrite);
        }
        Fault::MisdirectedWrite {
            offset,
            victim_offset,
        } => {
            let actual = file.addr(victim_offset).line();
            sys.memory_mut()
                .arm_fault(file.addr(offset).line(), FirmwareFault::MisdirectedWrite { actual });
        }
        Fault::MisdirectedRead {
            offset,
            source_offset,
        } => {
            let actual = file.addr(source_offset).line();
            sys.memory_mut()
                .arm_fault(file.addr(offset).line(), FirmwareFault::MisdirectedRead { actual });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::DaxFs;
    use memsim::config::SystemConfig;
    use memsim::engine::NullHooks;
    use tvarak::layout::NvmLayout;

    #[test]
    fn injected_lost_write_fires_on_writeback() {
        let cfg = SystemConfig::small();
        let layout = NvmLayout::new(cfg.nvm.dimms, 8);
        let mut sys = System::new(cfg, Box::new(NullHooks));
        let mut fs = DaxFs::new(layout, &mut sys);
        let f = fs.create(&mut sys, 4096).unwrap();
        inject(&mut sys, &f, Fault::LostWrite { offset: 128 });
        f.write(&mut sys, 0, 128, &[1u8; 64]).unwrap();
        sys.flush();
        // Baseline has no checksums: the loss is silent.
        assert_eq!(sys.memory().peek_line(f.addr(128).line()), [0u8; 64]);
        assert_eq!(sys.memory().fired_faults().len(), 1);
    }
}
