//! Result tables: the quantities Fig. 8 plots per design, with
//! normalization against the Baseline, printed as text tables and CSV.

use apps::driver::Design;
use memsim::config::SystemConfig;
use memsim::stats::Stats;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// One measured (workload, design) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload label, e.g. "set-only".
    pub workload: String,
    /// Design label.
    pub design: String,
    /// Simulated runtime in cycles.
    pub runtime_cycles: u64,
    /// Energy in nanojoules.
    pub energy_nj: f64,
    /// NVM accesses for application data.
    pub nvm_data: u64,
    /// NVM accesses for redundancy information.
    pub nvm_red: u64,
    /// L1 cache accesses (D+I).
    pub l1: u64,
    /// L2 cache accesses.
    pub l2: u64,
    /// LLC accesses (incl. controller partitions).
    pub llc: u64,
    /// On-controller cache accesses.
    pub tvarak_cache: u64,
    /// Bound-weave eligibility label for the cell's configuration (see
    /// `Outcome::weave_eligibility`); `-` when the producing binary does not
    /// stamp it. Classified from the machine alone, so the column is
    /// byte-identical at every engine-thread count.
    pub weave: &'static str,
}

impl Row {
    /// Build a row from a run's statistics.
    pub fn new(workload: &str, design: Design, stats: &Stats, cfg: &SystemConfig) -> Self {
        let c = &stats.counters;
        Row {
            workload: workload.to_string(),
            design: design.label().to_string(),
            runtime_cycles: stats.runtime_cycles(),
            energy_nj: stats.energy_nj(cfg),
            nvm_data: c.nvm_data(),
            nvm_red: c.nvm_redundancy(),
            l1: c.l1_accesses(),
            l2: c.l2_accesses(),
            llc: c.llc_accesses(),
            tvarak_cache: c.tvarak_accesses(),
            weave: "-",
        }
    }

    /// Stamp the bound-weave eligibility label (builder style).
    pub fn weave(mut self, label: &'static str) -> Self {
        self.weave = label;
        self
    }

    /// Total cache accesses.
    pub fn cache_total(&self) -> u64 {
        self.l1 + self.l2 + self.llc + self.tvarak_cache
    }
}

/// A collection of rows forming one figure/table.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// Figure/table title.
    pub title: String,
    /// Measured rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// An empty report with a title.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// The baseline runtime for `workload`, if measured.
    fn baseline_runtime(&self, workload: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.design == "Baseline")
            .map(|r| r.runtime_cycles)
    }

    /// Render the report as an aligned text table with runtimes normalized
    /// to each workload's Baseline (the paper's presentation).
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## {}", self.title);
        let _ = writeln!(
            s,
            "{:<14} {:<18} {:>14} {:>8} {:>14} {:>12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>12}",
            "workload",
            "design",
            "runtime(cyc)",
            "norm",
            "energy(nJ)",
            "nvm-data",
            "nvm-red",
            "L1",
            "L2",
            "LLC",
            "tvarak$",
            "weave"
        );
        for r in &self.rows {
            let norm = self
                .baseline_runtime(&r.workload)
                .map(|b| r.runtime_cycles as f64 / b as f64)
                .unwrap_or(f64::NAN);
            let _ = writeln!(
                s,
                "{:<14} {:<18} {:>14} {:>8.3} {:>14.0} {:>12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>12}",
                r.workload,
                r.design,
                r.runtime_cycles,
                norm,
                r.energy_nj,
                r.nvm_data,
                r.nvm_red,
                r.l1,
                r.l2,
                r.llc,
                r.tvarak_cache,
                r.weave
            );
        }
        s
    }

    /// Render as CSV (same columns as [`Self::to_table`]).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "workload,design,runtime_cycles,runtime_norm,energy_nj,nvm_data,nvm_red,l1,l2,llc,tvarak_cache,weave\n",
        );
        for r in &self.rows {
            let norm = self
                .baseline_runtime(&r.workload)
                .map(|b| r.runtime_cycles as f64 / b as f64)
                .unwrap_or(f64::NAN);
            let _ = writeln!(
                s,
                "{},{},{},{:.4},{:.0},{},{},{},{},{},{},{}",
                r.workload,
                r.design,
                r.runtime_cycles,
                norm,
                r.energy_nj,
                r.nvm_data,
                r.nvm_red,
                r.l1,
                r.l2,
                r.llc,
                r.tvarak_cache,
                r.weave
            );
        }
        s
    }

    /// Render a gnuplot script plotting normalized runtime as grouped bars
    /// (one group per workload, one bar per design) from the CSV this report
    /// saves — `gnuplot results/<name>.gp` regenerates the figure.
    pub fn to_gnuplot(&self, name: &str) -> String {
        let mut workloads: Vec<&str> = Vec::new();
        let mut designs: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !workloads.contains(&r.workload.as_str()) {
                workloads.push(&r.workload);
            }
            if !designs.contains(&r.design.as_str()) {
                designs.push(&r.design);
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "# {}", self.title);
        let _ = writeln!(s, "set terminal pngcairo size 1000,480");
        let _ = writeln!(s, "set output '{name}.png'");
        let _ = writeln!(s, "set style data histogram");
        let _ = writeln!(s, "set style histogram cluster gap 1");
        let _ = writeln!(s, "set style fill solid 0.9 border -1");
        let _ = writeln!(s, "set ylabel 'runtime normalized to Baseline'");
        let _ = writeln!(s, "set xtics rotate by -30");
        let _ = writeln!(s, "set key outside top");
        let _ = writeln!(s, "$data << EOD");
        let mut header = String::from("workload");
        for d in &designs {
            let _ = write!(header, " \"{d}\"");
        }
        let _ = writeln!(s, "{header}");
        for w in &workloads {
            let _ = write!(s, "\"{w}\"");
            for d in &designs {
                let norm = self
                    .rows
                    .iter()
                    .find(|r| r.workload == *w && r.design == *d)
                    .and_then(|r| {
                        self.baseline_runtime(w)
                            .map(|b| r.runtime_cycles as f64 / b as f64)
                    })
                    .unwrap_or(f64::NAN);
                let _ = write!(s, " {norm:.4}");
            }
            let _ = writeln!(s);
        }
        let _ = writeln!(s, "EOD");
        let cols: Vec<String> = (0..designs.len())
            .map(|i| {
                format!(
                    "$data using {}:xtic(1) title columnheader({})",
                    i + 2,
                    i + 2
                )
            })
            .collect();
        let _ = writeln!(s, "plot {}", cols.join(", \\\n     "));
        s
    }

    /// Print the table to stdout and save the CSV plus a gnuplot script
    /// under `results/<name>.{csv,gp}`.
    ///
    /// Rows print in insertion order and the save notice goes to stderr, so
    /// stdout (and the saved CSV) is byte-identical however the cells that
    /// produced the rows were scheduled.
    pub fn emit(&self, name: &str) {
        println!("{}", self.to_table());
        let dir = Path::new("results");
        if fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Ok(mut f) = fs::File::create(&path) {
                let _ = f.write_all(self.to_csv().as_bytes());
                eprintln!("[saved {}]", path.display());
            }
            let gp = dir.join(format!("{name}.gp"));
            if let Ok(mut f) = fs::File::create(&gp) {
                let _ = f.write_all(self.to_gnuplot(name).as_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, design: &str, cycles: u64) -> Row {
        Row {
            workload: workload.into(),
            design: design.into(),
            runtime_cycles: cycles,
            energy_nj: 1.0,
            nvm_data: 2,
            nvm_red: 3,
            l1: 4,
            l2: 5,
            llc: 6,
            tvarak_cache: 7,
            weave: "eligible",
        }
    }

    #[test]
    fn normalization_uses_matching_workload_baseline() {
        let mut rep = Report::new("t");
        rep.push(row("a", "Baseline", 100));
        rep.push(row("a", "Tvarak", 103));
        rep.push(row("b", "Baseline", 200));
        rep.push(row("b", "Tvarak", 300));
        let csv = rep.to_csv();
        assert!(csv.contains("a,Tvarak,103,1.0300"));
        assert!(csv.contains("b,Tvarak,300,1.5000"));
    }

    #[test]
    fn table_contains_all_rows() {
        let mut rep = Report::new("Fig X");
        rep.push(row("w", "Baseline", 10));
        rep.push(row("w", "TxB-Page-Csums", 50));
        let t = rep.to_table();
        assert!(t.contains("Fig X"));
        assert!(t.contains("TxB-Page-Csums"));
        assert!(t.contains("5.000"));
    }

    #[test]
    fn cache_total_sums() {
        assert_eq!(row("w", "d", 1).cache_total(), 4 + 5 + 6 + 7);
    }

    #[test]
    fn gnuplot_script_contains_all_series() {
        let mut rep = Report::new("t");
        rep.push(row("w1", "Baseline", 100));
        rep.push(row("w1", "Tvarak", 120));
        rep.push(row("w2", "Baseline", 10));
        rep.push(row("w2", "Tvarak", 30));
        let gp = rep.to_gnuplot("fig");
        assert!(gp.contains("\"Baseline\" \"Tvarak\""));
        assert!(gp.contains("\"w1\" 1.0000 1.2000"));
        assert!(gp.contains("\"w2\" 1.0000 3.0000"));
        assert!(gp.contains("set output 'fig.png'"));
    }
}
