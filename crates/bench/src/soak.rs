//! Long-horizon soak harness: interval-snapshot measurement on top of the
//! streaming-stats contract (DESIGN.md §16).
//!
//! A soak run drives one workload for many *intervals*. After each interval
//! the machine's cumulative [`Stats`] are snapshotted and the interval's
//! accrual is extracted with [`Stats::delta_since`]; per-op latencies are
//! drained from a live [`serve::Hist`] with `Hist::take`. Both primitives
//! obey the PR 7 merge contract, so re-merging every interval row is
//! **bit-identical** to the one monolithic delta the machine accumulated
//! across the whole horizon — [`SoakOutcome::verify`] checks exactly that,
//! and `soak_campaign` exits non-zero if it ever fails. Memory therefore
//! stays O(interval row), not O(horizon): nothing references the full op
//! stream once an interval closes.
//!
//! The measured phase runs on the sequential clock-driven scheduler
//! ([`apps::driver::run_clocked`]): interval boundaries are epoch barriers,
//! and imposing them on a bound-weave session would change cross-instance
//! scheduling with the interval count. Cell-level parallelism still comes
//! from `bench::runner` (`--jobs`), which is where campaign throughput
//! lives.

use apps::driver::{AppError, Machine};
use apps::fio::{Fio, Pattern};
use apps::rng::Rng;
use memsim::stats::Stats;
use memsim::PAGE;
use serve::Hist;

use crate::workloads::{machine, KvKind, KvWorkload, Scale, Variant};

/// Soak horizon knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Measurement intervals per cell.
    pub intervals: u64,
    /// Measured ops per instance per interval.
    pub ops_per_interval: u64,
}

impl SoakConfig {
    /// Horizon derived from the workload scale: the full horizon is
    /// `intervals ×` a Fig. 8 measured phase, split so every interval still
    /// does enough work to reach steady-state NVM traffic.
    pub fn from_scale(s: &Scale) -> Self {
        SoakConfig {
            intervals: 6,
            ops_per_interval: s.fio_ops_per_thread / 2,
        }
    }
}

/// One closed measurement interval.
#[derive(Debug, Clone)]
pub struct IntervalRow {
    /// Interval index (0-based).
    pub interval: u64,
    /// Ops completed in this interval (all instances).
    pub ops: u64,
    /// Stats accrued within the interval ([`Stats::delta_since`] of the
    /// bracketing cumulative snapshots).
    pub delta: Stats,
    /// Cumulative simulated runtime at the interval's close.
    pub cum_runtime_cycles: u64,
    /// Simulated cycles elapsed within the interval.
    pub interval_cycles: u64,
    /// Per-op service-latency histogram for this interval alone
    /// (`Hist::take`n at the boundary).
    pub lat: Hist,
}

/// A completed soak cell: every interval row plus the whole-run oracle.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Interval rows, in time order.
    pub rows: Vec<IntervalRow>,
    /// Monolithic oracle: the machine's own cumulative accrual across the
    /// whole measured horizon (`final.delta_since(&baseline)`), untouched
    /// by any interval bookkeeping.
    pub monolithic: Stats,
    /// Final media digest (determinism differential across `--jobs`).
    pub content_hash: u64,
}

impl SoakOutcome {
    /// Re-merge every interval row and compare against the monolithic
    /// oracle — the ISSUE 9 acceptance invariant.
    ///
    /// # Errors
    ///
    /// A description of the first mismatch (stats or latency-sample count).
    pub fn verify(&self) -> Result<(), String> {
        let mut merged = Stats::identity();
        let mut lat_count = 0u64;
        let mut op_count = 0u64;
        for row in &self.rows {
            merged.merge(&row.delta);
            lat_count += row.lat.count();
            op_count += row.ops;
        }
        merged
            .core_cycles
            .resize(self.monolithic.core_cycles.len(), 0);
        if merged != self.monolithic {
            return Err(format!(
                "interval snapshots diverge from monolithic oracle:\n merged: {merged}\n oracle: {}",
                self.monolithic
            ));
        }
        if lat_count != op_count {
            return Err(format!(
                "latency histogram drained {lat_count} samples for {op_count} ops"
            ));
        }
        Ok(())
    }
}

/// Drive `op` for `cfg.intervals × cfg.ops_per_interval` ops per instance,
/// snapshotting stats and draining latencies at every interval boundary.
///
/// The final interval includes the teardown `flush`, so the last snapshot
/// (and hence the merged total) covers every access the measured phase
/// caused.
///
/// # Errors
///
/// Propagates [`AppError`] from the workload closure.
pub fn soak_loop<F>(
    m: &mut Machine,
    instances: usize,
    cfg: &SoakConfig,
    mut op: F,
) -> Result<SoakOutcome, AppError>
where
    F: FnMut(&mut Machine, usize, u64) -> Result<(), AppError>,
{
    let cores = m.sys.num_cores();
    let baseline = m.stats();
    let mut prev = baseline.clone();
    let mut hist = Hist::new();
    let mut rows = Vec::with_capacity(cfg.intervals as usize);
    for interval in 0..cfg.intervals {
        let lat = &mut hist;
        apps::driver::run_clocked(m, instances, cfg.ops_per_interval, |m, i, o| {
            let t0 = m.sys.clock(i % cores);
            op(m, i, o)?;
            lat.record(m.sys.clock(i % cores).saturating_sub(t0));
            Ok(())
        })?;
        if interval + 1 == cfg.intervals {
            m.flush();
        }
        let cur = m.stats();
        rows.push(IntervalRow {
            interval,
            ops: instances as u64 * cfg.ops_per_interval,
            delta: cur.delta_since(&prev),
            cum_runtime_cycles: cur.runtime_cycles(),
            interval_cycles: cur.runtime_cycles() - prev.runtime_cycles(),
            lat: hist.take(),
        });
        prev = cur;
    }
    Ok(SoakOutcome {
        rows,
        monolithic: prev.delta_since(&baseline),
        content_hash: m.sys.memory().content_hash(),
    })
}

/// Soak one fio pattern under `v` for the configured horizon.
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn soak_fio(
    v: impl Into<Variant>,
    pattern: Pattern,
    s: &Scale,
    cfg: &SoakConfig,
) -> Result<SoakOutcome, AppError> {
    let v = v.into();
    let data_pages = s.fio_region_bytes / PAGE as u64 * s.fio_threads as u64 + 1024;
    let mut m = machine(v.clone(), data_pages);
    let mut fio = Fio::create(&mut m, s.fio_threads, s.fio_region_bytes)?;
    let mut txm = match v.design.sw_scheme() {
        pmemfs::tx::SwScheme::None => None,
        _ => Some(m.tx_manager(64 * 1024)?),
    };
    m.reset_stats();
    soak_loop(&mut m, s.fio_threads, cfg, |m, t, i| {
        fio.op(m, txm.as_mut(), t, pattern, i)
    })
}

/// Soak one KV structure/workload under `v` for the configured horizon.
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn soak_kv(
    v: impl Into<Variant>,
    kind: KvKind,
    wl: KvWorkload,
    s: &Scale,
    cfg: &SoakConfig,
) -> Result<SoakOutcome, AppError> {
    let v = v.into();
    let total_ops = cfg.intervals * cfg.ops_per_interval;
    let heap_bytes = (s.kv_keys * 96 + total_ops * 96).max(1 << 20);
    let data_pages = (heap_bytes / PAGE as u64 + 81) * s.kv_instances as u64 + 1500;
    let mut m = machine(v.clone(), data_pages);
    let mut txm = m.tx_manager(256 * 1024)?;
    let measured_scheme = v.design.sw_scheme();
    txm.set_scheme(pmemfs::tx::SwScheme::None);
    let cores = m.sys.num_cores();
    let mut instances = Vec::new();
    for i in 0..s.kv_instances {
        instances.push(kind.build(&mut m, i % cores, heap_bytes)?);
    }
    for k in 0..s.kv_keys {
        for inst in instances.iter_mut() {
            inst.insert(&mut m, &mut txm, k.wrapping_mul(0x9e37), k)?;
        }
    }
    m.flush();
    for inst in &instances {
        let f = *inst.file();
        m.reinit_redundancy(&f);
    }
    let meta = *txm.meta_file();
    m.reinit_redundancy(&meta);
    txm.set_scheme(measured_scheme);
    m.reset_stats();
    let mut rngs: Vec<Rng> = (0..s.kv_instances)
        .map(|i| Rng::new(0xfeed + i as u64))
        .collect();
    // Per-instance RNGs persist across intervals, so the soak's op stream
    // is one continuous long run, merely observed at interval boundaries.
    soak_loop(&mut m, s.kv_instances, cfg, |m, i, op| {
        match wl {
            KvWorkload::InsertOnly => {
                let key = (s.kv_keys + op).wrapping_mul(0x9e37_79b9) ^ i as u64;
                instances[i].insert(m, &mut txm, key, op)?;
            }
            _ => {
                let key = rngs[i].below(s.kv_keys).wrapping_mul(0x9e37);
                if rngs[i].unit_f64() < wl.update_fraction() {
                    instances[i].insert(m, &mut txm, key, op)?;
                } else {
                    instances[i].get(m, key)?;
                }
            }
        }
        Ok(())
    })
}
