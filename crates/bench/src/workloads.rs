//! The paper's workloads (Table II), runnable under any design at a
//! configurable scale. Every Fig. 8/9/10 binary builds on these functions so
//! that all experiments share one implementation per workload.
//!
//! The paper's absolute dataset sizes (512 MB fio regions, 1 M requests) are
//! scaled down so runs finish in minutes while preserving the property that
//! matters: working sets exceed the 24 MB LLC, so steady-state NVM traffic
//! occurs. `Scale::quick` shrinks further for smoke tests
//! (`TVARAK_SCALE=quick`).

use apps::btree::BTree;
use apps::ctree::CTree;
use apps::rbtree::RbTree;
use apps::driver::{AppError, Design, Machine, ThreadedRun};
use memsim::weave::DivergenceKind;
use apps::fio::{Fio, Pattern};
use apps::kv::PersistentKv;
use apps::nstore::NStore;
use apps::redis::Redis;
use apps::rng::Rng;
use apps::stream::{Kernel, Stream};
use apps::ycsb::{Op, YcsbMix};
use memsim::config::SystemConfig;
use memsim::stats::Stats;
use memsim::PAGE;

/// Workload sizing knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Redis: parallel instances (paper: 1–6; results shown for 6).
    pub redis_instances: usize,
    /// Redis: keyspace per instance.
    pub redis_keys: u64,
    /// Redis: measured requests per instance.
    pub redis_ops: u64,
    /// Redis: value size in bytes.
    pub redis_val: usize,
    /// KV structures: parallel instances (paper: 12).
    pub kv_instances: usize,
    /// KV structures: keys preloaded / inserted per instance.
    pub kv_keys: u64,
    /// KV structures: measured ops per instance (balanced workloads).
    pub kv_ops: u64,
    /// N-Store: client threads (paper: 4).
    pub nstore_clients: usize,
    /// N-Store: tuples in the table.
    pub nstore_tuples: u64,
    /// N-Store: total transactions.
    pub nstore_txs: u64,
    /// fio: threads (paper: 12).
    pub fio_threads: usize,
    /// fio: bytes per thread region.
    pub fio_region_bytes: u64,
    /// fio: 64 B ops per thread.
    pub fio_ops_per_thread: u64,
    /// stream: threads (paper: 12).
    pub stream_threads: usize,
    /// stream: bytes per array.
    pub stream_array_bytes: u64,
}

impl Scale {
    /// The default evaluation scale (working sets exceed the 24 MB LLC).
    pub fn full() -> Self {
        Scale {
            redis_instances: 6,
            redis_keys: 30_000,
            redis_ops: 10_000,
            redis_val: 64,
            kv_instances: 12,
            kv_keys: 25_000,
            kv_ops: 8_000,
            nstore_clients: 4,
            nstore_tuples: 400_000,
            nstore_txs: 40_000,
            fio_threads: 12,
            fio_region_bytes: 8 * 1024 * 1024,
            fio_ops_per_thread: 65_536,
            stream_threads: 12,
            stream_array_bytes: 30 * 1024 * 1024,
        }
    }

    /// A fast smoke-test scale (used by integration tests and
    /// `TVARAK_SCALE=quick`).
    pub fn quick() -> Self {
        Scale {
            redis_instances: 2,
            redis_keys: 2_000,
            redis_ops: 2_000,
            redis_val: 64,
            kv_instances: 2,
            kv_keys: 2_000,
            kv_ops: 2_000,
            nstore_clients: 2,
            nstore_tuples: 20_000,
            nstore_txs: 4_000,
            fio_threads: 2,
            fio_region_bytes: 512 * 1024,
            fio_ops_per_thread: 4_096,
            stream_threads: 2,
            stream_array_bytes: 1024 * 1024,
        }
    }

    /// Half-sized measured phases for the many-configuration sweeps
    /// (Fig. 9/10): working sets still exceed the LLC, op counts halve.
    pub fn reduced() -> Self {
        let mut s = Scale::full();
        s.redis_ops = 5_000;
        s.kv_ops = 4_000;
        s.nstore_txs = 20_000;
        s.fio_ops_per_thread = 32_768;
        s.stream_array_bytes = 12 * 1024 * 1024;
        s
    }

    /// `full()` unless the environment sets `TVARAK_SCALE=quick` or
    /// `TVARAK_SCALE=reduced`.
    pub fn from_env() -> Self {
        match std::env::var("TVARAK_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            Ok("reduced") => Scale::reduced(),
            _ => Scale::full(),
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The design that ran.
    pub design: Design,
    /// Measured statistics.
    pub stats: Stats,
    /// The machine configuration (for energy pricing).
    pub cfg: SystemConfig,
    /// Bound-weave report when the measured phase ran on the parallel
    /// engine (`None`: sequential path). Stats are identical either way;
    /// this only carries wall-clock/occupancy telemetry.
    pub weave: Option<memsim::weave::WeaveReport>,
    /// Canonical digest of the final media content, for determinism
    /// differentials (sequential vs bound-weave, any `--jobs` width).
    pub content_hash: u64,
    /// Bound-weave eligibility of this cell's configuration, as a stable
    /// label (see [`memsim::weave::WeaveEligibility::as_str`]). Classified
    /// from the machine alone, so the value — and the CSV column built from
    /// it — is identical at every engine-thread count.
    pub weave_eligibility: &'static str,
    /// Why a parallel attempt was abandoned in favour of the sequential
    /// rerun (`None`: no fallback happened). Telemetry only — divergence
    /// depends on the engine-thread count, so this never feeds CSVs.
    pub divergence: Option<&'static str>,
}

/// A design plus machine-parameter overrides: the Fig. 10 way-partition
/// sweeps and the §IV-H DIMM-count / NVM-technology studies vary these while
/// reusing the same workload code.
#[derive(Debug, Clone)]
pub struct Variant {
    /// The redundancy design.
    pub design: Design,
    /// Override: LLC ways for redundancy caching (Fig. 10(a)).
    pub redundancy_ways: Option<usize>,
    /// Override: LLC ways for data diffs (Fig. 10(b)).
    pub diff_ways: Option<usize>,
    /// Override: NVM DIMM count (§IV-H).
    pub nvm_dimms: Option<usize>,
    /// Override: NVM read/write latency in ns (§IV-H, e.g. battery-backed
    /// DRAM as NVM = DRAM timing).
    pub nvm_latency_ns: Option<(f64, f64)>,
    /// Override: NVM read/write DIMM occupancy in ns (scaled with latency).
    pub nvm_occupancy_ns: Option<(f64, f64)>,
    /// Override: bound-weave shard count (`memsim::config::SystemConfig::
    /// weave_shards`; `None` keeps the config default of auto-detect).
    /// Results are bit-identical at any value — this only moves where
    /// replay work runs — so differentials sweep it freely.
    pub weave_shards: Option<usize>,
}

impl Variant {
    /// A plain design with the paper's default machine.
    pub fn of(design: Design) -> Self {
        Variant {
            design,
            redundancy_ways: None,
            diff_ways: None,
            nvm_dimms: None,
            nvm_latency_ns: None,
            nvm_occupancy_ns: None,
            weave_shards: None,
        }
    }

    /// Set the LLC redundancy-caching way count.
    pub fn redundancy_ways(mut self, w: usize) -> Self {
        self.redundancy_ways = Some(w);
        self
    }

    /// Set the LLC data-diff way count.
    pub fn diff_ways(mut self, w: usize) -> Self {
        self.diff_ways = Some(w);
        self
    }

    /// Set the NVM DIMM count.
    pub fn nvm_dimms(mut self, d: usize) -> Self {
        self.nvm_dimms = Some(d);
        self
    }

    /// Use battery-backed DRAM timing for the "NVM" devices (§IV-H).
    pub fn dram_as_nvm(mut self) -> Self {
        self.nvm_latency_ns = Some((15.0, 15.0));
        self.nvm_occupancy_ns = Some((7.5, 7.5));
        self
    }

    /// Pin the bound-weave shard count (0 restores auto-detect).
    pub fn weave_shards(mut self, s: usize) -> Self {
        self.weave_shards = Some(s);
        self
    }
}

impl From<Design> for Variant {
    fn from(d: Design) -> Self {
        Variant::of(d)
    }
}

/// Build the paper's Table III machine with `data_pages` pool pages, under
/// a variant's overrides.
pub fn machine(v: impl Into<Variant>, data_pages: u64) -> Machine {
    let v = v.into();
    let mut cfg = SystemConfig::default();
    if let Some(w) = v.redundancy_ways {
        cfg.controller.redundancy_ways = w;
    }
    if let Some(w) = v.diff_ways {
        cfg.controller.diff_ways = w;
    }
    if let Some(d) = v.nvm_dimms {
        cfg.nvm.dimms = d;
    }
    if let Some((r, w)) = v.nvm_latency_ns {
        cfg.nvm.read_ns = r;
        cfg.nvm.write_ns = w;
    }
    if let Some((r, w)) = v.nvm_occupancy_ns {
        cfg.nvm.read_occupancy_ns = r;
        cfg.nvm.write_occupancy_ns = w;
    }
    if let Some(s) = v.weave_shards {
        cfg.weave_shards = s;
    }
    Machine::builder()
        .system_config(cfg)
        .design(v.design)
        .data_pages(data_pages)
        .build()
}

fn finish(m: &Machine) -> Outcome {
    if std::env::var("TVARAK_DIMM_DEBUG").is_ok() {
        eprintln!("  dimm (demand, posted): {:?}", m.sys.dimm_access_counts());
    }
    Outcome {
        design: m.design(),
        stats: m.stats(),
        cfg: m.sys.config().clone(),
        weave: None,
        content_hash: m.sys.memory().content_hash(),
        weave_eligibility: apps::driver::weave_eligibility(m).as_str(),
        divergence: None,
    }
}

/// Close out a cell whose measured phase ran under
/// [`apps::driver::run_clocked_threads`]: `Err` carries the divergence kind
/// (when known) and means the bound-weave attempt was abandoned — the whole
/// cell (setup included) must be redone sequentially.
fn finish_threaded(m: &Machine, mode: ThreadedRun) -> Result<Outcome, Option<DivergenceKind>> {
    if let ThreadedRun::Diverged(kind) = mode {
        return Err(kind);
    }
    let mut out = finish(m);
    if let ThreadedRun::Woven(r) = mode {
        out.weave = Some(r);
    }
    Ok(out)
}

/// Run a cell at the requested bound-weave width, falling back to a fresh
/// sequential run when the parallel attempt diverges, errors, or panics:
/// any of those may stem from mispredicted fill data, so the attempt is
/// discarded wholesale and the sequential oracle is authoritative (it
/// reproduces genuine failures deterministically). `cell(t)` must build the
/// machine and all application state from scratch each call. The fallback
/// cause (divergence kind, workload error, panic) is logged to stderr and
/// stamped on the rerun's [`Outcome::divergence`].
fn retry_sequential(
    threads: usize,
    mut cell: impl FnMut(usize) -> Result<Result<Outcome, Option<DivergenceKind>>, AppError>,
) -> Result<Outcome, AppError> {
    let mut fallback: Option<&'static str> = None;
    if threads >= 2 {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cell(threads)));
        match attempt {
            Ok(Ok(Ok(out))) => return Ok(out),
            Ok(Ok(Err(kind))) => {
                let label = kind.map_or("unknown", DivergenceKind::as_str);
                eprintln!("  bound-weave diverged ({label}); rerunning sequentially");
                fallback = Some(label);
            }
            Ok(Err(_)) => {
                eprintln!("  bound-weave attempt errored; rerunning sequentially");
                fallback = Some("attempt-error");
            }
            Err(_) => {
                eprintln!("  bound-weave attempt panicked; rerunning sequentially");
                fallback = Some("attempt-panic");
            }
        }
    }
    match cell(1)? {
        Ok(mut out) => {
            out.divergence = fallback;
            Ok(out)
        }
        Err(_) => unreachable!("sequential cell cannot diverge"),
    }
}

/// Redis workloads (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedisWorkload {
    /// 100% SET requests.
    SetOnly,
    /// 100% GET requests over a preloaded keyspace.
    GetOnly,
}

impl RedisWorkload {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RedisWorkload::SetOnly => "set-only",
            RedisWorkload::GetOnly => "get-only",
        }
    }
}

/// Run a Redis workload (Fig. 8(a–d) cells).
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_redis(v: impl Into<Variant>, wl: RedisWorkload, s: &Scale) -> Result<Outcome, AppError> {
    run_redis_threads(v, wl, s, crate::runner::engine_threads())
}

/// [`run_redis`] with an explicit bound-weave engine-thread request (see
/// `memsim::weave`). Results are bit-identical to `threads == 1`.
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_redis_threads(
    v: impl Into<Variant>,
    wl: RedisWorkload,
    s: &Scale,
    threads: usize,
) -> Result<Outcome, AppError> {
    let v = v.into();
    retry_sequential(threads, |t| redis_cell(&v, wl, s, t))
}

fn redis_cell(
    v: &Variant,
    wl: RedisWorkload,
    s: &Scale,
    threads: usize,
) -> Result<Result<Outcome, Option<DivergenceKind>>, AppError> {
    let v = v.clone();
    // Entry ≈ 24 B header + value; tables grow to ~2×keys slots.
    let heap_bytes =
        (s.redis_keys * (24 + s.redis_val as u64 + 16) * 2 + s.redis_keys * 64).max(1 << 20);
    let data_pages = (heap_bytes / PAGE as u64 + 81) * s.redis_instances as u64 + 1500;
    let mut m = machine(v.clone(), data_pages);
    let mut txm = m.tx_manager(256 * 1024)?;
    // Preload the keyspace (setup, unmeasured): run with the software scheme
    // disabled for speed, then rebuild redundancy functionally.
    let measured_scheme = v.design.sw_scheme();
    txm.set_scheme(pmemfs::tx::SwScheme::None);
    let mut instances = Vec::new();
    for i in 0..s.redis_instances {
        instances.push(Redis::create(&mut m, i, heap_bytes, 1024)?);
    }
    let val = vec![0xabu8; s.redis_val];
    for k in 0..s.redis_keys {
        for (i, r) in instances.iter_mut().enumerate() {
            r.set(&mut m, &mut txm, k.wrapping_mul(0x9e37) ^ i as u64, &val)?;
        }
    }
    m.flush();
    for r in &instances {
        let f = *r.file();
        m.reinit_redundancy(&f);
    }
    let meta = *txm.meta_file();
    m.reinit_redundancy(&meta);
    txm.set_scheme(measured_scheme);
    m.reset_stats();
    let mut rngs: Vec<Rng> = (0..s.redis_instances)
        .map(|i| Rng::new(0xbeef + i as u64))
        .collect();
    let mode = apps::driver::run_clocked_threads(
        &mut m,
        s.redis_instances,
        s.redis_ops,
        threads,
        |m, i, _op| {
            let key = rngs[i].below(s.redis_keys).wrapping_mul(0x9e37) ^ i as u64;
            match wl {
                RedisWorkload::SetOnly => instances[i].set(m, &mut txm, key, &val)?,
                RedisWorkload::GetOnly => {
                    let mut out = Vec::new();
                    instances[i].get(m, &mut txm, key, &mut out)?;
                }
            }
            Ok(())
        },
    )?;
    m.flush();
    Ok(finish_threaded(&m, mode))
}

/// Which key-value structure (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvKind {
    /// PMDK-style crit-bit tree.
    CTree,
    /// PMDK-style B+tree.
    BTree,
    /// PMDK-style red-black tree.
    RbTree,
}

impl KvKind {
    /// All three structures.
    pub fn all() -> [KvKind; 3] {
        [KvKind::CTree, KvKind::BTree, KvKind::RbTree]
    }

    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            KvKind::CTree => "ctree",
            KvKind::BTree => "btree",
            KvKind::RbTree => "rbtree",
        }
    }

    pub(crate) fn build(
        &self,
        m: &mut Machine,
        core: usize,
        heap: u64,
    ) -> Result<Box<dyn PersistentKv>, AppError> {
        Ok(match self {
            KvKind::CTree => Box::new(CTree::create(m, core, heap)?),
            KvKind::BTree => Box::new(BTree::create(m, core, heap)?),
            KvKind::RbTree => Box::new(RbTree::create(m, core, heap)?),
        })
    }
}

/// KV-structure workloads (pmembench mixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvWorkload {
    /// Fresh keys inserted throughout.
    InsertOnly,
    /// 100:0 updates:reads over preloaded keys.
    UpdateOnly,
    /// 50:50 updates:reads over preloaded keys.
    Balanced,
    /// 0:100 updates:reads over preloaded keys.
    ReadOnly,
}

impl KvWorkload {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            KvWorkload::InsertOnly => "insert-only",
            KvWorkload::UpdateOnly => "update-only",
            KvWorkload::Balanced => "balanced",
            KvWorkload::ReadOnly => "read-only",
        }
    }

    pub(crate) fn update_fraction(&self) -> f64 {
        match self {
            KvWorkload::InsertOnly | KvWorkload::UpdateOnly => 1.0,
            KvWorkload::Balanced => 0.5,
            KvWorkload::ReadOnly => 0.0,
        }
    }
}

/// Run a KV-structure workload (Fig. 8(e–h) cells).
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_kv(
    v: impl Into<Variant>,
    kind: KvKind,
    wl: KvWorkload,
    s: &Scale,
) -> Result<Outcome, AppError> {
    run_kv_threads(v, kind, wl, s, crate::runner::engine_threads())
}

/// [`run_kv`] with an explicit bound-weave engine-thread request (see
/// `memsim::weave`). Results are bit-identical to `threads == 1`.
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_kv_threads(
    v: impl Into<Variant>,
    kind: KvKind,
    wl: KvWorkload,
    s: &Scale,
    threads: usize,
) -> Result<Outcome, AppError> {
    let v = v.into();
    retry_sequential(threads, |t| kv_cell(&v, kind, wl, s, t))
}

fn kv_cell(
    v: &Variant,
    kind: KvKind,
    wl: KvWorkload,
    s: &Scale,
    threads: usize,
) -> Result<Result<Outcome, Option<DivergenceKind>>, AppError> {
    let v = v.clone();
    // Upper bound across structures: rbtree nodes are 48 B, btree amortizes
    // ~20 B/key, ctree ~40 B/key (leaf+internal).
    let heap_bytes = (s.kv_keys * 96 + s.kv_ops * 96).max(1 << 20);
    let data_pages = (heap_bytes / PAGE as u64 + 81) * s.kv_instances as u64 + 1500;
    let mut m = machine(v.clone(), data_pages);
    let mut txm = m.tx_manager(256 * 1024)?;
    let measured_scheme = v.design.sw_scheme();
    txm.set_scheme(pmemfs::tx::SwScheme::None);
    let cores = m.sys.num_cores();
    let mut instances = Vec::new();
    for i in 0..s.kv_instances {
        instances.push(kind.build(&mut m, i % cores, heap_bytes)?);
    }
    // Preload (setup, unmeasured) so the measured phase runs against a
    // populated structure under every workload.
    for k in 0..s.kv_keys {
        for inst in instances.iter_mut() {
            inst.insert(&mut m, &mut txm, k.wrapping_mul(0x9e37), k)?;
        }
    }
    m.flush();
    for inst in &instances {
        let f = *inst.file();
        m.reinit_redundancy(&f);
    }
    let meta = *txm.meta_file();
    m.reinit_redundancy(&meta);
    txm.set_scheme(measured_scheme);
    m.reset_stats();
    let mut rngs: Vec<Rng> = (0..s.kv_instances)
        .map(|i| Rng::new(0xfeed + i as u64))
        .collect();
    let mode = apps::driver::run_clocked_threads(
        &mut m,
        s.kv_instances,
        s.kv_ops,
        threads,
        |m, i, op| {
            match wl {
                KvWorkload::InsertOnly => {
                    // Fresh keys beyond the preloaded range.
                    let key = (s.kv_keys + op).wrapping_mul(0x9e37_79b9) ^ i as u64;
                    instances[i].insert(m, &mut txm, key, op)?;
                }
                _ => {
                    let key = rngs[i].below(s.kv_keys).wrapping_mul(0x9e37);
                    if rngs[i].unit_f64() < wl.update_fraction() {
                        instances[i].insert(m, &mut txm, key, op)?;
                    } else {
                        instances[i].get(m, key)?;
                    }
                }
            }
            Ok(())
        },
    )?;
    m.flush();
    Ok(finish_threaded(&m, mode))
}

/// N-Store YCSB mixes (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NstoreWorkload {
    /// 10:90 updates:reads.
    ReadHeavy,
    /// 50:50 updates:reads.
    Balanced,
    /// 90:10 updates:reads.
    UpdateHeavy,
}

impl NstoreWorkload {
    /// All three mixes.
    pub fn all() -> [NstoreWorkload; 3] {
        [
            NstoreWorkload::ReadHeavy,
            NstoreWorkload::Balanced,
            NstoreWorkload::UpdateHeavy,
        ]
    }

    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            NstoreWorkload::ReadHeavy => "read-heavy",
            NstoreWorkload::Balanced => "balanced",
            NstoreWorkload::UpdateHeavy => "update-heavy",
        }
    }

    fn update_fraction(&self) -> f64 {
        match self {
            NstoreWorkload::ReadHeavy => 0.1,
            NstoreWorkload::Balanced => 0.5,
            NstoreWorkload::UpdateHeavy => 0.9,
        }
    }
}

/// Run an N-Store workload (Fig. 8(i–l) cells).
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_nstore(v: impl Into<Variant>, wl: NstoreWorkload, s: &Scale) -> Result<Outcome, AppError> {
    run_nstore_threads(v, wl, s, crate::runner::engine_threads())
}

/// [`run_nstore`] with an explicit bound-weave engine-thread request (see
/// `memsim::weave`). Results are bit-identical to `threads == 1`. N-Store
/// clients share the table and WAL, so parallel attempts typically detect
/// cache-line sharing and fall back — the knob is still honoured for
/// uniformity and future sharding.
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_nstore_threads(
    v: impl Into<Variant>,
    wl: NstoreWorkload,
    s: &Scale,
    threads: usize,
) -> Result<Outcome, AppError> {
    let v = v.into();
    retry_sequential(threads, |t| nstore_cell(&v, wl, s, t))
}

fn nstore_cell(
    v: &Variant,
    wl: NstoreWorkload,
    s: &Scale,
    threads: usize,
) -> Result<Result<Outcome, Option<DivergenceKind>>, AppError> {
    let v = v.clone();
    let wal_bytes = s.nstore_txs * 160 + (1 << 20);
    let data_pages =
        s.nstore_tuples * 64 / PAGE as u64 + wal_bytes / PAGE as u64 + 1500;
    let mut m = machine(v.clone(), data_pages);
    let mut txm = m.tx_manager(256 * 1024)?;
    let mut store = NStore::create(&mut m, s.nstore_tuples, wal_bytes)?;
    m.reset_stats();
    let mut mixes: Vec<YcsbMix> = (0..s.nstore_clients)
        .map(|i| YcsbMix::new(s.nstore_tuples, wl.update_fraction(), 0xace + i as u64))
        .collect();
    let per_client = s.nstore_txs / s.nstore_clients as u64;
    let mode = apps::driver::run_clocked_threads(
        &mut m,
        s.nstore_clients,
        per_client,
        threads,
        |m, c, op| {
            match mixes[c].next_op() {
                Op::Update(k) => {
                    let payload = [(op ^ k) as u8; 64];
                    store.update(m, &mut txm, c, k, &payload)?;
                }
                Op::Read(k) => {
                    store.read(m, c, k)?;
                }
                // YcsbMix emits only reads and updates.
                _ => unreachable!("unexpected YCSB op"),
            }
            Ok(())
        },
    )?;
    m.flush();
    Ok(finish_threaded(&m, mode))
}

/// Run an fio workload (Fig. 8(m–p) cells).
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_fio(v: impl Into<Variant>, pattern: Pattern, s: &Scale) -> Result<Outcome, AppError> {
    run_fio_threads(v, pattern, s, crate::runner::engine_threads())
}

/// [`run_fio`] with an explicit bound-weave engine-thread request (see
/// `memsim::weave`). Results are bit-identical to `threads == 1`.
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_fio_threads(
    v: impl Into<Variant>,
    pattern: Pattern,
    s: &Scale,
    threads: usize,
) -> Result<Outcome, AppError> {
    let v = v.into();
    retry_sequential(threads, |t| fio_cell(&v, pattern, s, t))
}

fn fio_cell(
    v: &Variant,
    pattern: Pattern,
    s: &Scale,
    threads: usize,
) -> Result<Result<Outcome, Option<DivergenceKind>>, AppError> {
    let v = v.clone();
    let data_pages = s.fio_region_bytes / PAGE as u64 * s.fio_threads as u64 + 1024;
    let mut m = machine(v.clone(), data_pages);
    let mut fio = Fio::create(&mut m, s.fio_threads, s.fio_region_bytes)?;
    // Software schemes need the library's transactional interface.
    let mut txm = match v.design.sw_scheme() {
        pmemfs::tx::SwScheme::None => None,
        _ => Some(m.tx_manager(64 * 1024)?),
    };
    m.reset_stats();
    let mode = apps::driver::run_clocked_threads(
        &mut m,
        s.fio_threads,
        s.fio_ops_per_thread,
        threads,
        |m, t, i| fio.op(m, txm.as_mut(), t, pattern, i),
    )?;
    m.flush();
    Ok(finish_threaded(&m, mode))
}

/// Run one stream kernel (Fig. 8(q–t) cells).
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_stream(v: impl Into<Variant>, kernel: Kernel, s: &Scale) -> Result<Outcome, AppError> {
    run_stream_threads(v, kernel, s, crate::runner::engine_threads())
}

/// [`run_stream`] with an explicit bound-weave engine-thread request (see
/// `memsim::weave`). Results are bit-identical to `threads == 1`.
///
/// # Errors
///
/// Propagates [`AppError`] from the workload.
pub fn run_stream_threads(
    v: impl Into<Variant>,
    kernel: Kernel,
    s: &Scale,
    threads: usize,
) -> Result<Outcome, AppError> {
    let v = v.into();
    retry_sequential(threads, |t| stream_cell(&v, kernel, s, t))
}

fn stream_cell(
    v: &Variant,
    kernel: Kernel,
    s: &Scale,
    threads: usize,
) -> Result<Result<Outcome, Option<DivergenceKind>>, AppError> {
    let v = v.clone();
    let data_pages = 3 * s.stream_array_bytes / PAGE as u64 + 1024;
    let mut m = machine(v.clone(), data_pages);
    let mut st = Stream::create(&mut m, s.stream_threads, s.stream_array_bytes)?;
    let mut txm = match v.design.sw_scheme() {
        pmemfs::tx::SwScheme::None => None,
        _ => Some(m.tx_manager(64 * 1024)?),
    };
    st.init(&mut m)?;
    m.flush();
    m.reset_stats();
    let lines = st.lines_per_thread();
    let mode = apps::driver::run_clocked_threads(&mut m, s.stream_threads, lines, threads, |m, t, i| {
        st.op(m, txm.as_mut(), t, kernel, i)
    })?;
    m.flush();
    Ok(finish_threaded(&m, mode))
}
