//! The `serve_campaign` library: open-loop offered-load sweeps over the
//! five redundancy designs, with a knee-finding saturation mode.
//!
//! Each sweep cell builds a fresh machine for one (app, design, offered
//! load) point, generates a seeded open-loop request stream
//! (`serve::arrival`), and drains it through per-core bounded queues
//! (`serve::dispatch`) against the app running on the simulated machine.
//! The stream for a given app depends only on the arrival process, mean
//! gap, and app seed — never on the design — so designs compete on
//! identical request sequences. Cells execute on [`crate::runner`]'s
//! worker pool; all cross-cell decisions (knee bisection) are pure
//! functions of deterministic cell results, so the emitted CSV is
//! byte-identical at any `--jobs` width.
//!
//! The knee mode brackets the saturation knee — the heaviest offered load
//! a (app, design) pair sustains without shedding — from the sweep ladder,
//! then sharpens the bracket with geometric bisection rounds (each round
//! one parallel batch of probes).

use crate::runner::{run_cells, Cell};
use crate::workloads::machine;
use apps::btree::BTree;
use apps::driver::{AppError, Design};
use apps::fio::Fio;
use apps::kv::PersistentKv;
use apps::redis::Redis;
use memsim::PAGE;
use serve::{generate, serve_open_loop, AdmissionPolicy, ArrivalProcess};
use serve::{QueueConfig, RequestMix, ServeReport};
use std::fmt;
use std::str::FromStr;

/// Serving-campaign sizing knobs, scaled by `TVARAK_SCALE` like
/// [`crate::workloads::Scale`].
#[derive(Debug, Clone)]
pub struct ServeScale {
    /// Requests offered per sweep point.
    pub requests: u64,
    /// Serving cores (one bounded queue each).
    pub serving_cores: usize,
    /// Keyspace size per app instance.
    pub keys: u64,
    /// Per-core queue-depth cap.
    pub depth: usize,
}

impl ServeScale {
    /// Default evaluation scale.
    pub fn full() -> Self {
        ServeScale {
            requests: 12_000,
            serving_cores: 4,
            keys: 8_192,
            depth: 16,
        }
    }

    /// Smoke-test scale (`TVARAK_SCALE=quick`).
    pub fn quick() -> Self {
        ServeScale {
            requests: 1_500,
            serving_cores: 2,
            keys: 1_024,
            depth: 16,
        }
    }

    /// Half-sized sweep points (`TVARAK_SCALE=reduced`).
    pub fn reduced() -> Self {
        ServeScale {
            requests: 6_000,
            ..ServeScale::full()
        }
    }

    /// `full()` unless `TVARAK_SCALE` selects `quick` or `reduced`.
    pub fn from_env() -> Self {
        match std::env::var("TVARAK_SCALE").as_deref() {
            Ok("quick") => ServeScale::quick(),
            Ok("reduced") => ServeScale::reduced(),
            _ => ServeScale::full(),
        }
    }
}

/// Which application serves the request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedApp {
    /// fio-style raw 64 B accesses on per-core regions.
    Fio,
    /// PMDK-style B+tree per core (transactional inserts, plain gets).
    Kv,
    /// Redis-style persistent hash table per core.
    Redis,
}

impl ServedApp {
    /// Label for reports (the canonical [`FromStr`] spelling).
    pub fn label(&self) -> &'static str {
        match self {
            ServedApp::Fio => "fio",
            ServedApp::Kv => "kv",
            ServedApp::Redis => "redis",
        }
    }

    /// Deterministic seed of this app's request streams.
    fn seed(&self) -> u64 {
        match self {
            ServedApp::Fio => 0xF10,
            ServedApp::Kv => 0xCAFE,
            ServedApp::Redis => 0x12ED,
        }
    }

    /// The default campaign apps (`fio` and `kv`); set `SERVE_APPS` (e.g.
    /// `SERVE_APPS=fio,kv,redis`) to choose explicitly.
    pub fn from_env() -> Vec<ServedApp> {
        match std::env::var("SERVE_APPS") {
            Ok(list) => list
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().expect("bad SERVE_APPS entry"))
                .collect(),
            Err(_) => vec![ServedApp::Fio, ServedApp::Kv],
        }
    }
}

impl fmt::Display for ServedApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ServedApp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fio" => Ok(ServedApp::Fio),
            "kv" => Ok(ServedApp::Kv),
            "redis" => Ok(ServedApp::Redis),
            other => Err(format!(
                "unknown served app {other:?} (expected fio, kv, or redis)"
            )),
        }
    }
}

/// Scramble a request key onto the app keyspace (the same multiplier the
/// preload uses, so request keys hit preloaded entries).
fn app_key(key: u64) -> u64 {
    key.wrapping_mul(0x9e37)
}

/// Run one (app, design, offered-load) sweep point.
///
/// # Errors
///
/// Propagates [`AppError`] from the served application.
pub fn run_serve_point(
    app: ServedApp,
    design: Design,
    process: ArrivalProcess,
    policy: AdmissionPolicy,
    mean_gap: f64,
    s: &ServeScale,
) -> Result<ServeReport, AppError> {
    let mix = RequestMix {
        keys: s.keys,
        ..RequestMix::default()
    };
    let reqs = generate(process, mean_gap, s.requests, &mix, app.seed());
    let qc = QueueConfig {
        depth: s.depth,
        policy,
    };
    let cores = s.serving_cores;
    match app {
        ServedApp::Fio => {
            let region_bytes = (s.keys * 64).max(PAGE as u64);
            let data_pages = (region_bytes / PAGE as u64 + 1) * cores as u64 + 1024;
            let mut m = machine(design, data_pages);
            let mut fio = Fio::create(&mut m, cores, region_bytes)?;
            let mut txm = match design.sw_scheme() {
                pmemfs::tx::SwScheme::None => None,
                _ => Some(m.tx_manager(64 * 1024)?),
            };
            m.reset_stats();
            serve_open_loop(&mut m, cores, &reqs, qc, |m, core, r| {
                fio.keyed_op(m, txm.as_mut(), core, r.key, r.write)
            })
        }
        ServedApp::Kv => {
            let heap_bytes = (s.keys * 96 + s.requests * 96).max(1 << 20);
            let data_pages = (heap_bytes / PAGE as u64 + 81) * cores as u64 + 1500;
            let mut m = machine(design, data_pages);
            let mut txm = m.tx_manager(256 * 1024)?;
            let measured_scheme = design.sw_scheme();
            txm.set_scheme(pmemfs::tx::SwScheme::None);
            let mut instances: Vec<BTree> = Vec::new();
            for core in 0..cores {
                instances.push(BTree::create(&mut m, core, heap_bytes)?);
            }
            for k in 0..s.keys {
                for inst in instances.iter_mut() {
                    inst.insert(&mut m, &mut txm, app_key(k), k)?;
                }
            }
            m.flush();
            for inst in &instances {
                let f = *inst.file();
                m.reinit_redundancy(&f);
            }
            let meta = *txm.meta_file();
            m.reinit_redundancy(&meta);
            txm.set_scheme(measured_scheme);
            m.reset_stats();
            serve_open_loop(&mut m, cores, &reqs, qc, |m, core, r| {
                if r.write {
                    instances[core].insert(m, &mut txm, app_key(r.key), r.seq)?;
                } else {
                    instances[core].get(m, app_key(r.key))?;
                }
                Ok(())
            })
        }
        ServedApp::Redis => {
            let heap_bytes = (s.keys * (24 + 64 + 16) * 2 + s.keys * 64).max(1 << 20);
            let data_pages = (heap_bytes / PAGE as u64 + 81) * cores as u64 + 1500;
            let mut m = machine(design, data_pages);
            let mut txm = m.tx_manager(256 * 1024)?;
            let measured_scheme = design.sw_scheme();
            txm.set_scheme(pmemfs::tx::SwScheme::None);
            let mut instances = Vec::new();
            for core in 0..cores {
                instances.push(Redis::create(&mut m, core, heap_bytes, 1024)?);
            }
            let val = vec![0xabu8; 64];
            for k in 0..s.keys {
                for inst in instances.iter_mut() {
                    inst.set(&mut m, &mut txm, app_key(k), &val)?;
                }
            }
            m.flush();
            for inst in &instances {
                let f = *inst.file();
                m.reinit_redundancy(&f);
            }
            let meta = *txm.meta_file();
            m.reinit_redundancy(&meta);
            txm.set_scheme(measured_scheme);
            m.reset_stats();
            serve_open_loop(&mut m, cores, &reqs, qc, |m, core, r| {
                if r.write {
                    instances[core].set(m, &mut txm, app_key(r.key), &val)?;
                } else {
                    let mut out = Vec::new();
                    instances[core].get(m, &mut txm, app_key(r.key), &mut out)?;
                }
                Ok(())
            })
        }
    }
}

/// The sweep's offered-load ladder: mean inter-arrival gaps in cycles,
/// light to heavy. The heaviest point (4 cycles/request) is far past any
/// design's per-request service time, guaranteeing at least one point
/// beyond the saturation knee (shed > 0 under the shed policy).
pub fn gap_ladder() -> Vec<f64> {
    vec![8192.0, 2048.0, 512.0, 128.0, 32.0, 4.0]
}

/// One measured sweep point: identity plus the dispatch report.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// `sweep` for ladder points, `knee` for bisection probes.
    pub phase: &'static str,
    /// Served application.
    pub app: ServedApp,
    /// Redundancy design.
    pub design: Design,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Admission policy.
    pub policy: AdmissionPolicy,
    /// Per-core queue-depth cap the point ran with.
    pub depth: usize,
    /// Mean inter-arrival gap in cycles.
    pub mean_gap: f64,
    /// The dispatch loop's report.
    pub report: ServeReport,
}

/// A bracketed saturation knee for one (app, design) pair.
#[derive(Debug, Clone)]
pub struct KneeEstimate {
    /// Served application.
    pub app: ServedApp,
    /// Redundancy design.
    pub design: Design,
    /// Estimated knee gap in cycles (geometric midpoint of the final
    /// bracket); `None` when the sweep never shed (knee below the ladder's
    /// heaviest point — cannot happen with the default ladder) or always
    /// shed.
    pub knee_gap: Option<f64>,
}

/// Campaign configuration: the cross product actually run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Apps serving request streams.
    pub apps: Vec<ServedApp>,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Admission policy.
    pub policy: AdmissionPolicy,
    /// Bisection rounds sharpening each knee bracket (0 disables knee
    /// mode).
    pub knee_rounds: u32,
    /// Sizing knobs.
    pub scale: ServeScale,
}

impl CampaignConfig {
    /// The default campaign: env-selected apps and scale, Poisson
    /// arrivals, shed policy, no knee rounds.
    pub fn from_env() -> Self {
        CampaignConfig {
            apps: ServedApp::from_env(),
            process: ArrivalProcess::Poisson,
            policy: AdmissionPolicy::Shed,
            knee_rounds: 0,
            scale: ServeScale::from_env(),
        }
    }
}

fn point_cell(
    cfg: &CampaignConfig,
    phase: &'static str,
    app: ServedApp,
    design: Design,
    gap: f64,
) -> Cell<SweepRow> {
    let (process, policy, scale) = (cfg.process, cfg.policy, cfg.scale.clone());
    Cell::new(
        format!("serve:{app}:{design}:{phase}:gap{gap:.2}"),
        move || {
            let depth = scale.depth;
            let report = run_serve_point(app, design, process, policy, gap, &scale)
                .unwrap_or_else(|e| panic!("serve {app}/{design} gap {gap}: {e}"));
            SweepRow {
                phase,
                app,
                design,
                process,
                policy,
                depth,
                mean_gap: gap,
                report,
            }
        },
    )
}

/// Run the full campaign: the ladder sweep for every (app, design) pair,
/// plus `knee_rounds` geometric-bisection rounds sharpening each pair's
/// saturation bracket. Returns all measured rows (ladder then bisection
/// probes, in deterministic order) and the knee estimates.
///
/// Every cross-cell decision is a pure function of cell results, and
/// [`run_cells`] returns results in input order, so the output is
/// byte-identical at any `jobs` width.
pub fn run_campaign(cfg: &CampaignConfig, jobs: usize) -> (Vec<SweepRow>, Vec<KneeEstimate>) {
    let ladder = gap_ladder();
    let pairs: Vec<(ServedApp, Design)> = cfg
        .apps
        .iter()
        .flat_map(|&a| Design::all().into_iter().map(move |d| (a, d)))
        .collect();
    let cells: Vec<Cell<SweepRow>> = pairs
        .iter()
        .flat_map(|&(a, d)| ladder.iter().map(move |&g| (a, d, g)))
        .map(|(a, d, g)| point_cell(cfg, "sweep", a, d, g))
        .collect();
    let mut rows: Vec<SweepRow> = run_cells(cells, jobs).into_iter().map(|r| r.value).collect();

    let mut estimates = Vec::new();
    if cfg.knee_rounds > 0 {
        // Initial bracket per pair: the lightest shedding gap and the
        // heaviest non-shedding gap from the ladder (ladder is light →
        // heavy, i.e. descending gap).
        let mut brackets: Vec<Option<(f64, f64)>> = pairs
            .iter()
            .map(|&(a, d)| {
                let of = |gap: f64| {
                    rows.iter()
                        .find(|r| r.app == a && r.design == d && r.mean_gap == gap)
                        .map(|r| r.report.shed)
                        .unwrap_or(0)
                };
                ladder
                    .windows(2)
                    .find(|w| of(w[0]) == 0 && of(w[1]) > 0)
                    .map(|w| (w[0], w[1]))
            })
            .collect();
        for _ in 0..cfg.knee_rounds {
            let probes: Vec<(usize, f64)> = brackets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.map(|(lo, hi)| (i, (lo * hi).sqrt())))
                .collect();
            let cells: Vec<Cell<SweepRow>> = probes
                .iter()
                .map(|&(i, g)| {
                    let (a, d) = pairs[i];
                    point_cell(cfg, "knee", a, d, g)
                })
                .collect();
            let probe_rows: Vec<SweepRow> =
                run_cells(cells, jobs).into_iter().map(|r| r.value).collect();
            for (&(i, g), row) in probes.iter().zip(&probe_rows) {
                let b = brackets[i].as_mut().expect("probed pair has a bracket");
                if row.report.shed > 0 {
                    b.1 = g; // still shedding: knee is at a lighter load
                } else {
                    b.0 = g; // not shedding: knee is at a heavier load
                }
            }
            rows.extend(probe_rows);
        }
        estimates = pairs
            .iter()
            .zip(&brackets)
            .map(|(&(app, design), b)| KneeEstimate {
                app,
                design,
                knee_gap: b.map(|(lo, hi)| (lo * hi).sqrt()),
            })
            .collect();
    }
    (rows, estimates)
}

/// The campaign CSV: a pure function of the rows and estimates, so the
/// determinism test can compare outputs structurally.
pub fn to_csv(rows: &[SweepRow], estimates: &[KneeEstimate]) -> String {
    let mut out = String::from(
        "phase,app,design,arrival,policy,depth,mean_gap_cycles,\
         offered,accepted,shed,blocked,peak_depth,\
         offered_per_kcycle,served_per_kcycle,\
         lat_p50,lat_p99,lat_p999,lat_mean,queue_p50,queue_p99,span_cycles\n",
    );
    for r in rows {
        let rep = &r.report;
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.2},{},{},{},{},{},{:.4},{:.4},{},{},{},{:.1},{},{},{}\n",
            r.phase,
            r.app,
            r.design,
            r.process,
            r.policy,
            r.depth,
            r.mean_gap,
            rep.offered,
            rep.accepted,
            rep.shed,
            rep.blocked,
            rep.peak_depth,
            1000.0 / r.mean_gap,
            rep.throughput_per_kcycle(),
            rep.latency.p50(),
            rep.latency.p99(),
            rep.latency.p999(),
            rep.latency.mean(),
            rep.queueing.p50(),
            rep.queueing.p99(),
            rep.span_cycles,
        ));
    }
    for e in estimates {
        let (gap, rate) = match e.knee_gap {
            Some(g) => (format!("{g:.2}"), format!("{:.4}", 1000.0 / g)),
            None => ("".into(), "".into()),
        };
        out.push_str(&format!(
            "knee-est,{},{},,,,{gap},,,,,,{rate},,,,,,,,\n",
            e.app, e.design
        ));
    }
    out
}

/// Verify the campaign's accounting invariants: every point must satisfy
/// `offered == accepted + shed` and `completed == accepted`, and the
/// ladder sweep must include at least one point past the saturation knee
/// (`shed > 0`) for every (app, design) pair under the shed policy.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn check_invariants(rows: &[SweepRow]) -> Result<(), String> {
    for r in rows {
        let rep = &r.report;
        if rep.accepted + rep.shed != rep.offered {
            return Err(format!(
                "{}/{} gap {:.2}: offered {} != accepted {} + shed {}",
                r.app, r.design, r.mean_gap, rep.offered, rep.accepted, rep.shed
            ));
        }
        if rep.completed != rep.accepted {
            return Err(format!(
                "{}/{} gap {:.2}: completed {} != accepted {}",
                r.app, r.design, r.mean_gap, rep.completed, rep.accepted
            ));
        }
        if rep.latency.count() != rep.completed {
            return Err(format!(
                "{}/{} gap {:.2}: histogram count {} != completed {}",
                r.app,
                r.design,
                r.mean_gap,
                rep.latency.count(),
                rep.completed
            ));
        }
    }
    let sweep = rows.iter().filter(|r| r.phase == "sweep");
    let mut pairs: Vec<(ServedApp, Design)> = sweep.clone().map(|r| (r.app, r.design)).collect();
    pairs.dedup();
    for (a, d) in pairs {
        let shed_seen = rows.iter().any(|r| {
            r.phase == "sweep"
                && r.app == a
                && r.design == d
                && r.policy == AdmissionPolicy::Shed
                && r.report.shed > 0
        });
        let uses_shed = rows
            .iter()
            .any(|r| r.app == a && r.design == d && r.policy == AdmissionPolicy::Shed);
        if uses_shed && !shed_seen {
            return Err(format!(
                "{a}/{d}: no sweep point past the saturation knee (shed == 0 everywhere)"
            ));
        }
    }
    Ok(())
}
