//! # bench — experiment harness
//!
//! Regenerates every table and figure of the TVARAK paper's evaluation
//! (§IV). Each binary corresponds to one figure; `results/*.csv` files are
//! written alongside human-readable tables on stdout:
//!
//! - `show_config` — Table III (simulation parameters)
//! - `fig8_redis`, `fig8_kv`, `fig8_nstore`, `fig8_fio`, `fig8_stream` —
//!   Fig. 8(a–t): runtime, energy, NVM and cache accesses per design
//! - `fig9_ablation` — Fig. 9: TVARAK design-choice breakdown
//! - `fig10_sensitivity` — Fig. 10: LLC way-partition sensitivity
//! - `sec4h_scaling` — §IV-H: NVM DIMM count and NVM technology scaling
//! - `vilamb_sweep` — extension: Vilamb-style asynchronous-redundancy epochs
//! - `coverage_campaign` — Table I's verification column, quantified by
//!   fault injection
//! - `chaos_campaign` — fault type × design × app sweep asserting the
//!   survival invariants of the detection → recovery → degradation
//!   pipeline (exits non-zero on violation; see DESIGN.md §8)
//! - `serve_campaign` — open-loop offered-load sweep: throughput vs
//!   offered load plus p50/p99/p999 tail latency per design, with a
//!   knee-finding saturation mode (`--knee`; see DESIGN.md §15)
//! - `probe` — ad-hoc single-workload comparisons for calibration
//! - `perf_baseline` — tracked performance baseline of the simulator
//!   itself (checksum/engine microbenches + a fixed cell grid), emitting
//!   `BENCH_perf.json` (see DESIGN.md §9)
//!
//! Run with `TVARAK_SCALE=quick` (smoke sizes) or `TVARAK_SCALE=reduced`
//! (half-sized measured phases for the many-configuration sweeps);
//! `scripts/reproduce.sh` chains everything. Campaign binaries execute
//! their cells on [`runner`]'s worker pool — `--jobs N` / `MEMSIM_JOBS`
//! select the width; output is byte-identical at any setting.

#![warn(missing_docs)]

pub mod capture;
pub mod report;
pub mod runner;
pub mod serve;
pub mod soak;
pub mod workloads;

pub use report::{Report, Row};
pub use runner::{run_cells, Cell, CellResult};
pub use workloads::{Outcome, Scale};
