//! Chaos campaign: sweep firmware-fault type × design × application and
//! assert the survival invariants of the detection → recovery → degradation
//! pipeline (§II-A fault taxonomy, §III recovery path):
//!
//! 1. **No silent wrong data** under designs with inline cache-line-granular
//!    verification (TVARAK proper): a read either returns the acknowledged
//!    bytes, is transparently recovered, or fails closed with a structured
//!    `Poisoned` error — never fabricated values. Page-granular checksums
//!    (the naive ablation, TxB-Page) cannot make this promise: their update
//!    path re-reads the rest of the page from media, so a sticky misread or
//!    stale line gets *laundered* into the recomputed checksum and later
//!    verification agrees with the wrong bytes. The campaign measures that
//!    exposure (`wrong`/`crash` columns) instead of asserting it away;
//!    Baseline runs as the no-checksum contrast row.
//! 2. **End-state convergence**: once the fault episode ends (the campaign
//!    disarms surviving sticky faults — device replaced), continued
//!    scrubbing settles every remaining media inconsistency: repaired,
//!    checksum-rebuilt (two-of-three vote), parity-re-silvered, or
//!    quarantined — nothing stays silently inconsistent.
//! 3. **Degraded mode fails closed**: every quarantined page rejects reads
//!    with `Poisoned`; the rest of the file keeps serving.
//!
//! Faults are injected from a deterministic seeded [`FaultPlan`], identical
//! across designs for a given (app, fault-kind) cell. Emits
//! `results/chaos_campaign.csv` plus a structured event log in
//! `results/chaos_events.log`; exits non-zero on any invariant violation.

use apps::btree::BTree;
use apps::driver::{AppError, Design, Machine};
use apps::kv::PersistentKv;
use apps::rbtree::RbTree;
use apps::rng::Rng;
use bench::capture::CampaignTrace;
use bench::runner::{self, Cell};
use memsim::addr::{LineAddr, PAGE};
use memsim::{FaultKind, FaultPlan, FirmwareFault};
use pmemfs::fs::FileHandle;
use pmemfs::recover::RecoveryEvent;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tvarak::controller::TvarakConfig;

thread_local! {
    /// The most recent panic message on *this* worker thread. Fabricated
    /// bytes legitimately send the index structures chasing garbage (a
    /// loud, per-op-caught failure), so the campaign installs one quiet
    /// process-wide hook up front that records the message here instead of
    /// spamming stderr. A per-run `set_hook`/`take_hook` pair — the old
    /// scheme — would race when cells run on the runner's worker pool.
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn install_quiet_panic_hook() {
    std::panic::set_hook(Box::new(|info| {
        LAST_PANIC.with(|p| *p.borrow_mut() = Some(info.to_string()));
    }));
}

fn take_last_panic() -> Option<String> {
    LAST_PANIC.with(|p| p.borrow_mut().take())
}

/// Ops per run and fault events per run, from `TVARAK_SCALE`.
fn scale() -> (u64, usize) {
    match std::env::var("TVARAK_SCALE").as_deref() {
        Ok("quick") => (240, 5),
        Ok("reduced") => (600, 8),
        _ => (1200, 12),
    }
}

const FLUSH_EVERY: u64 = 16;
const MAX_RETRIES: u32 = 3;
const SCRUB_PAGES: u64 = 1;
const SCRUB_INTERVAL: u64 = 4;

fn designs() -> [Design; 5] {
    [
        Design::Baseline,
        Design::Tvarak,
        Design::TvarakAblated(TvarakConfig::naive()),
        Design::TxbObject,
        Design::TxbPage,
    ]
}

/// Inline cache-line-granular verification — the only designs that can
/// promise "no silent wrong data" under every fault kind. Page-granular
/// checksums are launderable: recomputing them re-reads the rest of the
/// page from media, folding a sticky misread or stale line into the stored
/// checksum, after which verification agrees with the wrong bytes.
fn inline_cl_verified(design: Design) -> bool {
    design.has_controller()
        && design.checksum_granularity() == Some(tvarak::scrub::ScrubGranularity::CacheLine)
}

/// Whether a fired fault of this kind leaves the media inconsistent with the
/// acknowledged write stream (read-path misdirections corrupt what's
/// *returned*, not what's stored).
fn corrupts_media(kind: FaultKind) -> bool {
    matches!(
        kind,
        FaultKind::LostWrite
            | FaultKind::MisdirectedWrite
            | FaultKind::TornWrite
            | FaultKind::StickyLostWrite
    )
}

fn build_fault(kind: FaultKind, aux: LineAddr, torn_bytes: usize) -> FirmwareFault {
    match kind {
        FaultKind::LostWrite => FirmwareFault::LostWrite,
        FaultKind::MisdirectedWrite => FirmwareFault::MisdirectedWrite { actual: aux },
        FaultKind::MisdirectedRead => FirmwareFault::MisdirectedRead { actual: aux },
        FaultKind::TornWrite => FirmwareFault::TornWrite {
            persist_bytes: torn_bytes,
        },
        FaultKind::StickyLostWrite => FirmwareFault::StickyLostWrite,
        FaultKind::StickyMisdirectedRead => FirmwareFault::StickyMisdirectedRead { actual: aux },
    }
}

/// Per-run tallies and invariant violations.
#[derive(Default)]
struct Outcome {
    armed: u64,
    fired: u64,
    media_fired: u64,
    detections: u64,
    recoveries: u64,
    quarantines: u64,
    /// Reads that returned a *value* different from the acknowledged one.
    wrong_data: u64,
    /// Reads that returned nothing where a value was expected (collateral
    /// of a degraded structure; reported, not an invariant).
    degraded_miss: u64,
    /// Accesses rejected with a structured `Poisoned` error.
    fail_closed: u64,
    /// The application panicked chasing fabricated bytes (only reachable
    /// when the stack returned wrong data — i.e. non-verifying designs).
    crashed: bool,
    first_fire_op: Option<u64>,
    first_detect_op: Option<u64>,
    final_bad_pages: usize,
    violations: Vec<String>,
}

impl Outcome {
    fn detect_latency(&self) -> Option<u64> {
        match (self.first_fire_op, self.first_detect_op) {
            (Some(f), Some(d)) if d >= f => Some(d - f),
            _ => None,
        }
    }
}

/// The fault-injection scaffold shared by all apps: arms planned faults,
/// forces periodic writebacks, ticks the scrub daemon, and collects the
/// structured event log.
struct ChaosCtl {
    plan: FaultPlan,
    /// Candidate target lines (the app's hot region).
    lines: Vec<LineAddr>,
    kind: FaultKind,
    fired_seen: usize,
    out: Outcome,
    log: Vec<String>,
    ctx: String,
}

impl ChaosCtl {
    fn new(seed: u64, ops: u64, events: usize, kind: FaultKind, lines: Vec<LineAddr>, ctx: String) -> Self {
        ChaosCtl {
            plan: FaultPlan::new(seed, ops, events, &[kind]),
            lines,
            kind,
            fired_seen: 0,
            out: Outcome::default(),
            log: Vec::new(),
            ctx,
        }
    }

    fn before_op(&mut self, m: &mut Machine, op: u64) {
        // Pre-drain due events to end the borrow before arming.
        let due: Vec<_> = self.plan.due(op).to_vec();
        for ev in due {
            let target = self.lines[(ev.target_sel % self.lines.len() as u64) as usize];
            let mut aux = self.lines[(ev.aux_sel % self.lines.len() as u64) as usize];
            if aux == target {
                aux = self.lines[((ev.aux_sel + 1) % self.lines.len() as u64) as usize];
            }
            m.sys
                .memory_mut()
                .arm_fault(target, build_fault(ev.kind, aux, ev.torn_bytes));
            self.out.armed += 1;
            // Read-path faults only fire on a demand miss; flush (which
            // writes back dirty lines and drains the hierarchy) so the next
            // access goes to the device. A bare invalidate would discard
            // acknowledged dirty data — the campaign must not inject faults
            // the fault model doesn't define.
            if matches!(
                ev.kind,
                FaultKind::MisdirectedRead | FaultKind::StickyMisdirectedRead
            ) {
                m.flush();
            }
            self.log.push(format!(
                "{} op={} event=Armed kind={} line={:?} aux={:?}",
                self.ctx,
                op,
                ev.kind.label(),
                target,
                aux
            ));
        }
    }

    fn after_op(&mut self, m: &mut Machine, op: u64) {
        if (op + 1).is_multiple_of(FLUSH_EVERY) {
            m.flush();
        }
        // Scrub daemon tick; detections route through the orchestrator.
        // Only Baseline runs without one, and Baseline detects nothing.
        let _ = m.tick_scrub(0);
        // Newly fired firmware faults.
        let fired = m.sys.memory().fired_faults();
        for f in &fired[self.fired_seen..] {
            self.out.fired += 1;
            if corrupts_media(self.kind) {
                self.out.media_fired += 1;
                self.out.first_fire_op.get_or_insert(op);
            }
            self.log.push(format!(
                "{} op={} event=Fired fault={:?} line={:?}",
                self.ctx, op, f.fault, f.target
            ));
        }
        self.fired_seen = fired.len();
        // Orchestrator events, stamped with the op index.
        if let Some(orch) = m.orchestrator_mut() {
            for ev in orch.take_events() {
                if matches!(ev, RecoveryEvent::Detected { .. }) {
                    self.out.first_detect_op.get_or_insert(op);
                }
                self.log.push(format!("{} op={} event={:?}", self.ctx, op, ev));
            }
        }
    }

    /// End the fault episode and converge. The final flush still races the
    /// armed faults; then the failed device region is "replaced" (every
    /// surviving fault disarmed) and the scrub daemon keeps running until a
    /// full pass settles nothing new — every residual inconsistency gets
    /// repaired, checksum-rebuilt, parity-re-silvered, or quarantined.
    fn finish(&mut self, m: &mut Machine, file: &FileHandle, ops: u64) {
        m.flush();
        let disarmed = m.sys.memory_mut().disarm_all_faults();
        if disarmed > 0 {
            self.log.push(format!(
                "{} op={ops} event=Disarmed remaining={disarmed}",
                self.ctx
            ));
        }
        if m.scrub_daemon().is_some() {
            let settled = |m: &Machine| {
                m.orchestrator().map_or((0, 0, 0, 0), |o| {
                    (
                        o.detections(),
                        o.recoveries(),
                        o.quarantines(),
                        o.parity_rebuilds(),
                    )
                })
            };
            let period = file.pages() * SCRUB_INTERVAL / SCRUB_PAGES;
            // Each stuck page can absorb MAX_RETRIES error-steps before its
            // quarantine; size the tick budget so convergence is decided by
            // the no-new-findings test, not budget exhaustion.
            let mut budget = period * (6 + 2 * u64::from(MAX_RETRIES));
            // Align to a pass boundary first: the cursor is mid-range, and
            // "settles nothing new" is only meaningful over a FULL pass —
            // a partial wrap can miss the corrupt page entirely.
            let run_one_pass = |m: &mut Machine, budget: &mut u64| {
                let pass = m.scrub_daemon().unwrap().scrubber().passes();
                while m.scrub_daemon().unwrap().scrubber().passes() == pass && *budget > 0 {
                    let _ = m.tick_scrub(0);
                    *budget -= 1;
                }
            };
            run_one_pass(m, &mut budget);
            loop {
                let before = settled(m);
                run_one_pass(m, &mut budget);
                if settled(m) == before || budget == 0 {
                    break;
                }
            }
            let s = m.scrub_daemon().unwrap().scrubber();
            self.log.push(format!(
                "{} op={ops} event=Converged passes={} checked={} budget_left={budget} settled={:?}",
                self.ctx,
                s.passes(),
                s.pages_checked(),
                settled(m)
            ));
            self.after_op(m, ops);
        }
        if let Some(orch) = m.orchestrator() {
            self.out.detections = orch.detections();
            self.out.recoveries = orch.recoveries();
            self.out.quarantines = orch.quarantines();
        }
    }

    /// The cross-design invariants. `verifying` = inline cache-line-granular
    /// verification on every read (see [`inline_cl_verified`]).
    fn check_invariants(&mut self, m: &mut Machine, file: &FileHandle, verifying: bool) {
        if verifying && self.out.wrong_data > 0 {
            self.out.violations.push(format!(
                "{}: {} silent wrong-data reads under a verifying design",
                self.ctx, self.out.wrong_data
            ));
        }
        // Degraded mode fails closed on every poisoned page.
        let poisoned: Vec<_> = match m.orchestrator() {
            Some(orch) => orch.poisoned_pages().to_vec(),
            None => Vec::new(),
        };
        for p in &poisoned {
            if let Some(n) = (0..file.pages()).find(|&n| file.page(n) == *p) {
                let mut buf = [0u8; 8];
                if m.read_file(file, 0, n * PAGE as u64, &mut buf).is_ok() {
                    self.out.violations.push(format!(
                        "{}: poisoned {:?} served a read (fail-open)",
                        self.ctx, p
                    ));
                }
            }
        }
        // No *silent* media inconsistency survives the final sweep: every
        // inconsistent page must be on the poison list. (Baseline maintains
        // no redundancy, so verify_all is trivially empty there.)
        let bad = m.verify_all(file).err().unwrap_or_default();
        self.out.final_bad_pages = bad.len();
        if std::env::var("CHAOS_DEBUG").is_ok() && !bad.is_empty() {
            let csum_bad = m.fs.scrub_cl(&m.sys, file);
            let page_bad = m.fs.scrub_pages(&m.sys, file);
            let parity_bad = m.fs.scrub_parity(&m.sys, file);
            eprintln!(
                "{}: debug bad={bad:?} cl={csum_bad:?} page={page_bad:?} parity={parity_bad:?} poisoned={poisoned:?}",
                self.ctx
            );
        }
        for n in bad {
            if !poisoned.contains(&file.page(n)) {
                self.out.violations.push(format!(
                    "{}: file page {n} inconsistent but not quarantined (silent)",
                    self.ctx
                ));
            }
        }
    }
}

fn enable_pipeline(m: &mut Machine, file: &FileHandle) {
    if m.design() != Design::Baseline {
        m.enable_recovery(MAX_RETRIES).expect("poison store fits");
        m.enable_scrub_daemon(file, SCRUB_PAGES, SCRUB_INTERVAL);
    }
}

fn seed_for(app: &str, design: Design, kind: FaultKind) -> u64 {
    // Same plan for every design in a given (app, kind) cell, so designs
    // face identical chaos.
    let mut s: u64 = 0x00c4_a05c_u64;
    for b in app.bytes().chain(kind.label().bytes()) {
        s = s.wrapping_mul(31).wrapping_add(b as u64);
    }
    let _ = design;
    s
}

/// Key-value chaos: btree or rbtree under a 60:40 overwrite:lookup mix with
/// a shadow map. Keys whose op failed are tainted (their durable value is
/// legitimately unknown) and excluded from comparisons.
fn run_kv_chaos(
    design: Design,
    kind: FaultKind,
    app: &str,
    ops: u64,
    events: usize,
) -> (Outcome, Vec<String>) {
    let mut m = Machine::builder().small().design(design).data_pages(256).build();
    let mut txm = m.tx_manager(256 * 1024).expect("pool fits tx log");
    let heap = 32 * 1024u64;
    let mut kv: Box<dyn PersistentKv> = match app {
        "btree" => Box::new(BTree::create(&mut m, 0, heap).expect("pool fits")),
        _ => Box::new(RbTree::create(&mut m, 0, heap).expect("pool fits")),
    };
    let file = *kv.file();
    const KEYSPACE: u64 = 240;
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut tainted: HashMap<u64, ()> = HashMap::new();
    for k in 0..160u64 {
        kv.insert(&mut m, &mut txm, k, k ^ 0xa5a5).expect("preload");
        shadow.insert(k, k ^ 0xa5a5);
    }
    m.flush();
    enable_pipeline(&mut m, &file);
    // Fault targets: the node region actually exercised (first pages).
    let hot_pages = 4.min(file.pages());
    let lines: Vec<LineAddr> = (0..hot_pages)
        .flat_map(|n| (0..memsim::LINES_PER_PAGE).map(move |i| (n, i)))
        .map(|(n, i)| file.page(n).line(i))
        .collect();
    let ctx = format!("app={app} design={} fault={}", m.design().label(), kind.label());
    let mut ctl = ChaosCtl::new(seed_for(app, design, kind), ops, events, kind, lines, ctx);
    let page_map: Vec<_> = (0..file.pages()).map(|n| file.page(n)).collect();
    ctl.log.push(format!(
        "{} geometry: pages={:?} first_data_index={} hot_pages={hot_pages}",
        ctl.ctx,
        page_map,
        file.first_data_index()
    ));
    let mut rng = Rng::new(0xdead_0000 ^ seed_for(app, design, kind));
    // Silent-wrong-data accounting stops once the index structure itself
    // is legitimately suspect: after the stack raises a structured
    // `Poisoned` error, or after recovery interrupts a *mutation* mid-op
    // (the dropped transaction's partial writes may have left the index
    // mid-split; the retried insert runs on that state). Neither is
    // *silent* — the stack detected and signalled in both cases. Reads
    // interrupted by recovery stay fully checked: they mutate nothing.
    let mut degraded = false;
    // Fabricated bytes can send the index chasing garbage pointers; a panic
    // is a loud (not silent) failure, caught per-op and reported with its
    // message + location in the event log (the quiet hook main() installed
    // records it in LAST_PANIC).
    for op in 0..ops {
        ctl.before_op(&mut m, op);
        let key = rng.below(KEYSPACE);
        let write = rng.below(10) < 6;
        let d_before = m.orchestrator().map_or(0, |o| o.detections());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if write {
                match m.with_recovery(|m| kv.insert(m, &mut txm, key, op)) {
                    Ok(()) => {
                        shadow.insert(key, op);
                        tainted.remove(&key);
                        false
                    }
                    Err(AppError::Poisoned(_)) => {
                        ctl.out.fail_closed += 1;
                        tainted.insert(key, ());
                        true
                    }
                    Err(e) => panic!("unexpected app error: {e}"),
                }
            } else if !design.has_controller()
                && m.check_poison(&file, 0, (file.pages() * PAGE as u64) as usize).is_err()
            {
                // Software designs cannot detect a poisoned page inline;
                // the coarse pre-check is their fail-closed gate.
                ctl.out.fail_closed += 1;
                true
            } else {
                match m.with_recovery(|m| kv.get(m, key)) {
                    Ok(got) => {
                        match (got, shadow.get(&key)) {
                            (Some(v), Some(&want))
                                if v != want && !tainted.contains_key(&key) && !degraded =>
                            {
                                ctl.out.wrong_data += 1;
                                let line = format!(
                                    "{} op={} event=WrongData key={key} got={v} want={want}",
                                    ctl.ctx, op
                                );
                                ctl.log.push(line);
                            }
                            (None, Some(_)) if !tainted.contains_key(&key) => {
                                ctl.out.degraded_miss += 1;
                            }
                            _ => {}
                        }
                        false
                    }
                    Err(AppError::Poisoned(_)) => {
                        ctl.out.fail_closed += 1;
                        true
                    }
                    Err(e) => panic!("unexpected app error: {e}"),
                }
            }
        }));
        match outcome {
            Ok(poisoned_now) => {
                degraded |= poisoned_now;
                let d_after = m.orchestrator().map_or(0, |o| o.detections());
                if write && d_after > d_before {
                    // A mutation was interrupted and retried; the index may
                    // be structurally disturbed from here on.
                    degraded = true;
                    tainted.insert(key, ());
                }
            }
            Err(_) => {
                ctl.out.crashed = true;
                let info = take_last_panic().unwrap_or_default();
                ctl.log.push(format!(
                    "{} op={} event=AppCrash info={}",
                    ctl.ctx,
                    op,
                    info.replace('\n', " | ")
                ));
                if inline_cl_verified(design) && !degraded {
                    ctl.out.violations.push(format!(
                        "{}: app crash on fabricated bytes under a verifying design",
                        ctl.ctx
                    ));
                }
                break;
            }
        }
        ctl.after_op(&mut m, op);
    }
    ctl.finish(&mut m, &file, ops);
    ctl.check_invariants(&mut m, &file, inline_cl_verified(design));
    let log = std::mem::take(&mut ctl.log);
    (ctl.out, log)
}

/// Raw-file chaos (fio-style): 64 B reads/writes at random line offsets
/// with a per-line shadow. Writes go through the transactional interface
/// under software designs so their checksums stay maintained. The op
/// stream is captured to `results/traces/` as chunked `TVT2`.
fn run_raw_chaos(design: Design, kind: FaultKind, ops: u64, events: usize) -> (Outcome, Vec<String>) {
    let mut m = Machine::builder().small().design(design).data_pages(256).build();
    let mut txm = match design.sw_scheme() {
        pmemfs::tx::SwScheme::None => None,
        _ => Some(m.tx_manager(256 * 1024).expect("pool fits tx log")),
    };
    let file = m.create_dax_file("fio", 16 * PAGE as u64).expect("pool fits");
    let nlines = file.pages() * memsim::LINES_PER_PAGE as u64;
    // Preload every line out-of-band (unmeasured setup), then rebuild
    // redundancy from media ground truth.
    let pattern = |l: u64, v: u64| -> [u8; 64] {
        let mut p = [0u8; 64];
        p[..8].copy_from_slice(&l.to_le_bytes());
        p[8..16].copy_from_slice(&v.to_le_bytes());
        p[16] = (l ^ v) as u8;
        p
    };
    for l in 0..nlines {
        m.sys.memory_mut().poke_line(file.addr(l * 64).line(), &pattern(l, 0));
    }
    m.reinit_redundancy(&file);
    let mut shadow: Vec<Option<u64>> = vec![Some(0); nlines as usize];
    enable_pipeline(&mut m, &file);
    let lines: Vec<LineAddr> = (0..nlines).map(|l| file.addr(l * 64).line()).collect();
    let ctx = format!(
        "app=fio design={} fault={}",
        m.design().label(),
        kind.label()
    );
    let mut trace = CampaignTrace::create(&format!("chaos {ctx}")).expect("open trace capture");
    let mut ctl = ChaosCtl::new(seed_for("fio", design, kind), ops, events, kind, lines, ctx);
    let mut rng = Rng::new(0xf10_0000 ^ seed_for("fio", design, kind));
    for op in 0..ops {
        ctl.before_op(&mut m, op);
        let l = rng.below(nlines);
        let off = l * 64;
        let is_write = rng.below(2) == 0;
        trace.record(is_write, file.addr(off), 64);
        if is_write {
            // Write.
            let data = pattern(l, op + 1);
            let result = match txm.as_mut() {
                Some(txm) => {
                    // Transactional path has no inline poison gate; check
                    // explicitly so degraded pages fail closed.
                    match m.check_poison(&file, off, 64) {
                        Ok(()) => {
                            let mut tx = txm.begin(&mut m.sys, 0).expect("tx");
                            tx.write(&mut m.sys, &file, off, &data).expect("tx write");
                            tx.commit(&mut m.sys).expect("commit");
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                }
                None => m.write_file(&file, 0, off, &data),
            };
            match result {
                Ok(()) => shadow[l as usize] = Some(op + 1),
                Err(AppError::Poisoned(_)) => {
                    ctl.out.fail_closed += 1;
                    shadow[l as usize] = None;
                }
                Err(e) => panic!("unexpected app error: {e}"),
            }
        } else {
            // Read.
            let mut buf = [0u8; 64];
            match m.read_file(&file, 0, off, &mut buf) {
                Ok(()) => {
                    if let Some(v) = shadow[l as usize] {
                        if buf != pattern(l, v) {
                            ctl.out.wrong_data += 1;
                            ctl.log.push(format!(
                                "{} op={} event=WrongData line={l} want_ver={v} got={:02x?}",
                                ctl.ctx,
                                op,
                                &buf[..17]
                            ));
                        }
                    }
                }
                Err(AppError::Poisoned(_)) => ctl.out.fail_closed += 1,
                Err(e) => panic!("unexpected app error: {e}"),
            }
        }
        ctl.after_op(&mut m, op);
    }
    match trace.finish() {
        Ok(n) => ctl.log.push(format!("{} trace: {n} records captured", ctl.ctx)),
        Err(e) => ctl.out.violations.push(format!("{}: {e}", ctl.ctx)),
    }
    ctl.finish(&mut m, &file, ops);
    ctl.check_invariants(&mut m, &file, inline_cl_verified(design));
    let log = std::mem::take(&mut ctl.log);
    (ctl.out, log)
}

fn main() {
    let (ops, events) = scale();
    println!("# Chaos campaign — fault type × design × app, {ops} ops, {events} fault events/run");
    println!(
        "{:<6} {:<17} {:<18} {:>5} {:>5} {:>6} {:>7} {:>5} {:>5} {:>7} {:>7} {:>5} {:>8}",
        "app", "design", "fault", "armed", "fired", "detect", "recover", "quar", "wrong", "dmiss", "closed", "crash", "latency"
    );
    // Install the quiet panic hook once, before any worker thread can run a
    // cell (per-run hook swaps would race on the process-global hook).
    install_quiet_panic_hook();
    // CHAOS_FILTER=substring runs only matching cells (e.g. "rbtree design=Tvarak fault=sticky").
    let filter = std::env::var("CHAOS_FILTER").unwrap_or_default();
    type ChaosCell = (&'static str, Design, FaultKind, Outcome, Vec<String>);
    let mut cells: Vec<Cell<ChaosCell>> = Vec::new();
    for app in ["btree", "rbtree", "fio"] {
        for design in designs() {
            for kind in FaultKind::all() {
                let ctx = format!("app={app} design={} fault={}", design.label(), kind.label());
                if !filter.is_empty() && !ctx.contains(&filter) {
                    continue;
                }
                cells.push(Cell::new(ctx, move || {
                    let (out, run_log) = match app {
                        "fio" => run_raw_chaos(design, kind, ops, events),
                        _ => run_kv_chaos(design, kind, app, ops, events),
                    };
                    (app, design, kind, out, run_log)
                }));
            }
        }
    }
    // A filter that matches nothing must not read as a clean campaign.
    if cells.is_empty() {
        eprintln!("CHAOS_FILTER={filter:?} matched no cells — nothing was checked");
        std::process::exit(2);
    }
    let results = runner::run_cells(cells, runner::jobs());
    // Table, CSV, and event log are assembled from the in-input-order
    // results after the pool drains, so every --jobs setting emits the
    // same bytes.
    let mut csv = String::from(
        "app,design,fault,ops,armed,fired,media_fired,detections,recoveries,quarantines,\
         wrong_data,degraded_miss,fail_closed,crashed,first_detect_latency_ops,final_bad_pages,\
         seed,repro\n",
    );
    let mut log = String::new();
    let mut violations: Vec<String> = Vec::new();
    for r in &results {
        let (app, design, kind, out, run_log) = &r.value;
        let latency = out
            .detect_latency()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<6} {:<17} {:<18} {:>5} {:>5} {:>6} {:>7} {:>5} {:>5} {:>7} {:>7} {:>5} {:>8}",
            app,
            design.label(),
            kind.label(),
            out.armed,
            out.fired,
            out.detections,
            out.recoveries,
            out.quarantines,
            out.wrong_data,
            out.degraded_miss,
            out.fail_closed,
            out.crashed as u8,
            latency
        );
        // Provenance: the plan seed plus a one-command repro. The filter
        // string pins app, design, and fault, and the seed is a pure
        // function of that cell, so the single command re-runs this exact
        // row (single-quoted, comma-free — CSV-safe unescaped).
        let repro = format!(
            "CHAOS_FILTER='app={} design={} fault={}' ./target/release/chaos_campaign",
            app,
            design.label(),
            kind.label()
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:#018x},{}",
            app,
            design.label(),
            kind.label(),
            ops,
            out.armed,
            out.fired,
            out.media_fired,
            out.detections,
            out.recoveries,
            out.quarantines,
            out.wrong_data,
            out.degraded_miss,
            out.fail_closed,
            out.crashed as u8,
            latency,
            out.final_bad_pages,
            seed_for(app, *design, *kind),
            repro
        );
        for line in run_log {
            log.push_str(line);
            log.push('\n');
        }
        violations.extend(out.violations.iter().cloned());
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/chaos_campaign.csv", csv);
    let _ = std::fs::write("results/chaos_events.log", log);
    eprintln!("[saved results/chaos_campaign.csv, results/chaos_events.log]");
    if !violations.is_empty() {
        eprintln!("INVARIANT VIOLATIONS ({}):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("all survival invariants held");
}
