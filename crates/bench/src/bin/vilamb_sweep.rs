//! Extension experiment (Table I / Vilamb \[33\]): asynchronous software
//! redundancy with configurable epochs, on the Redis set-only workload.
//!
//! Sweeping the epoch length shows the Vilamb trade-off the paper's Table I
//! summarizes: overhead falls toward Baseline as the epoch grows, but every
//! transaction inside an epoch sits in a vulnerability window where silent
//! corruption would go undetected.

use apps::driver::Design;
use bench::workloads::{run_redis, RedisWorkload, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut rep = Report::new("Extension — Vilamb epoch sweep (Redis set-only)");
    for design in [
        Design::Baseline,
        Design::Tvarak,
        Design::Vilamb { epoch_txs: 1 },
        Design::Vilamb { epoch_txs: 10 },
        Design::Vilamb { epoch_txs: 100 },
        Design::Vilamb { epoch_txs: 1000 },
        Design::TxbPage,
    ] {
        let label = match design {
            Design::Vilamb { epoch_txs } => format!("Vilamb(epoch={epoch_txs})"),
            d => d.label().to_string(),
        };
        eprintln!("redis set-only under {label} ...");
        let out = run_redis(design, RedisWorkload::SetOnly, &scale).expect("workload failed");
        let mut row = Row::new("set-only", design, &out.stats, &out.cfg);
        row.design = label;
        rep.push(row);
    }
    rep.emit("vilamb_sweep");
}
