//! Crash-simulation campaign: sweep app × design × crash point and verify
//! that every design recovers every crash to a consistent state (ISSUE 3;
//! DESIGN.md §10 crash model).
//!
//! Two deterministic phases, both on the [`bench::runner`] worker pool:
//!
//! 1. **Count**: one reference run per (app, design) cell with an unlimited
//!    writeback budget measures the window's total NVM writebacks `N`.
//! 2. **Replay**: a [`CrashPlan`] picks crash points from `0..=N`
//!    (exhaustive when `N` is small, seeded reservoir sampling otherwise;
//!    `--crash-samples` caps the points per cell) and each point replays the
//!    run with that budget, power-fails, recovers, and verifies.
//!
//! Emits `results/crashsim_campaign.csv` from the in-input-order results, so
//! the file is byte-identical at every `--jobs` setting and for a fixed
//! `--seed`. Exits non-zero if any crash point reports unrecoverable loss.
//!
//! Flags: `--quick` (tiny windows, CI smoke), `--crash-samples N`,
//! `--seed N`, `--jobs N`. `TVARAK_SCALE=quick|reduced` matches the other
//! campaigns.

use apps::driver::Design;
use apps::fio::Pattern;
use bench::runner::{self, Cell};
use crashsim::{AppKind, CrashPlan, CrashReport, Scenario};
use std::fmt::Write as _;

struct Scale {
    fio_ops: u64,
    stream_iters: u64,
    ctree_keys: u64,
    crash_samples: usize,
}

/// Workload sizes and the per-cell crash-point cap. `--quick` (or
/// `TVARAK_SCALE=quick`) keeps windows small enough that most cells
/// enumerate exhaustively.
fn scale(args: &[String]) -> Scale {
    let quick = args.iter().any(|a| a == "--quick")
        || matches!(std::env::var("TVARAK_SCALE").as_deref(), Ok("quick"));
    let reduced = matches!(std::env::var("TVARAK_SCALE").as_deref(), Ok("reduced"));
    if quick {
        Scale {
            fio_ops: 3,
            stream_iters: 2,
            ctree_keys: 4,
            crash_samples: 8,
        }
    } else if reduced {
        Scale {
            fio_ops: 6,
            stream_iters: 4,
            ctree_keys: 8,
            crash_samples: 16,
        }
    } else {
        Scale {
            fio_ops: 8,
            stream_iters: 6,
            ctree_keys: 12,
            crash_samples: 24,
        }
    }
}

/// `--flag N` or `--flag=N` anywhere in `args`.
fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let eq = format!("{flag}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next()?.parse().ok();
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return v.parse().ok();
        }
    }
    None
}

fn main() {
    let args = runner::positional_args();
    let sc = scale(&args);
    let samples = flag_value(&args, "--crash-samples")
        .map(|n| n as usize)
        .unwrap_or(sc.crash_samples)
        .max(2);
    let seed = flag_value(&args, "--seed").unwrap_or(0x7c4a_51c3);
    let jobs = runner::jobs();

    let apps = [
        AppKind::Fio {
            threads: 2,
            region_bytes: 4096,
            pattern: Pattern::SeqWrite,
            ops: sc.fio_ops,
        },
        AppKind::StreamCopy {
            threads: 2,
            array_bytes: 8 * 1024,
            iters: sc.stream_iters,
        },
        AppKind::CtreeInsert { keys: sc.ctree_keys },
    ];
    let scenarios: Vec<Scenario> = apps
        .iter()
        .flat_map(|&app| Design::all().map(|design| Scenario { app, design }))
        .collect();

    println!(
        "# Crash-simulation campaign — {} cells, ≤{samples} crash points each, seed {seed:#x}",
        scenarios.len()
    );

    // Phase 1: reference runs count each cell's writeback window.
    let count_cells: Vec<Cell<u64>> = scenarios
        .iter()
        .map(|&sc| Cell::new(format!("count {}", sc.label()), move || sc.count_writebacks()))
        .collect();
    let totals = runner::run_cells(count_cells, jobs);

    // Phase 2: replay every planned crash point of every cell.
    let mut replay_cells: Vec<Cell<CrashReport>> = Vec::new();
    for (sc, total) in scenarios.iter().zip(&totals) {
        let plan = CrashPlan::sampled(total.value, samples, seed);
        for &k in &plan.points {
            let s = *sc;
            replay_cells.push(Cell::new(
                format!("{} k={k}/{}", s.label(), plan.total),
                move || s.run_crash_point(k),
            ));
        }
    }
    let reports = runner::run_cells(replay_cells, jobs);

    println!(
        "{:<14} {:<17} {:>7} {:>7} {:>7} {:>6} {:>8} {:>7} {:>9}",
        "app", "design", "k", "total", "crashed", "rolled", "unverif", "vilamb", "outcome"
    );
    let mut csv = String::from(
        "app,design,crash_point,total_writebacks,crashed,rolled_back,\
         unverifiable_pages,vilamb_pending,violations,outcome,image_hash\n",
    );
    let mut lost: Vec<String> = Vec::new();
    let mut idx = 0usize;
    for (sc, total) in scenarios.iter().zip(&totals) {
        let plan = CrashPlan::sampled(total.value, samples, seed);
        for &k in &plan.points {
            let r = &reports[idx].value;
            idx += 1;
            println!(
                "{:<14} {:<17} {:>7} {:>7} {:>7} {:>6} {:>8} {:>7} {:>9}",
                sc.app.label(),
                sc.design.label(),
                k,
                r.total_writebacks,
                r.crashed as u8,
                r.rolled_back,
                r.unverifiable_pages,
                r.vilamb_pending,
                r.outcome.label()
            );
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{},{},{},{:#018x}",
                sc.app.label(),
                sc.design.label(),
                k,
                r.total_writebacks,
                r.crashed as u8,
                r.rolled_back,
                r.unverifiable_pages,
                r.vilamb_pending,
                r.violations.len(),
                r.outcome.label(),
                r.image_hash
            );
            for v in &r.violations {
                lost.push(format!("{} k={k}: {v}", sc.label()));
            }
        }
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/crashsim_campaign.csv", csv);
    eprintln!("[saved results/crashsim_campaign.csv]");
    runner::eprint_rates(&reports, |_| 0);
    if !lost.is_empty() {
        eprintln!("UNRECOVERABLE LOSS ({} crash points):", lost.len());
        for v in &lost {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("every crash point recovered to a consistent state");
}
