//! Fig. 8(e–h): C-Tree / B-Tree / RB-Tree insert-only and balanced
//! workloads under all four designs.

use apps::driver::Design;
use bench::runner::{self, Cell};
use bench::workloads::{run_kv, KvKind, KvWorkload, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut cells = Vec::new();
    for kind in KvKind::all() {
        for wl in [KvWorkload::InsertOnly, KvWorkload::Balanced] {
            for design in Design::fig8() {
                let label = format!("{}/{}", kind.label(), wl.label());
                let s = scale.clone();
                cells.push(Cell::new(format!("{label} {design}"), move || {
                    let out = run_kv(design, kind, wl, &s).expect("workload failed");
                    (label, design, out)
                }));
            }
        }
    }
    let results = runner::run_cells(cells, runner::jobs());
    runner::eprint_rates(&results, |(_, _, out)| out.stats.runtime_cycles());
    let mut rep =
        Report::new("Fig. 8(e-h) — Key-value structures (runtime, energy, NVM & cache accesses)");
    for r in &results {
        let (label, design, out) = &r.value;
        rep.push(Row::new(label, *design, &out.stats, &out.cfg).weave(out.weave_eligibility));
    }
    rep.emit("fig8_kv");
}
