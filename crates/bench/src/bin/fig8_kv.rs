//! Fig. 8(e–h): C-Tree / B-Tree / RB-Tree insert-only and balanced
//! workloads under all four designs.

use apps::driver::Design;
use bench::workloads::{run_kv, KvKind, KvWorkload, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut rep =
        Report::new("Fig. 8(e-h) — Key-value structures (runtime, energy, NVM & cache accesses)");
    for kind in KvKind::all() {
        for wl in [KvWorkload::InsertOnly, KvWorkload::Balanced] {
            for design in Design::fig8() {
                let label = format!("{}/{}", kind.label(), wl.label());
                eprintln!("running {label} under {design} ...");
                let out = run_kv(design, kind, wl, &scale).expect("workload failed");
                rep.push(Row::new(&label, design, &out.stats, &out.cfg));
            }
        }
    }
    rep.emit("fig8_kv");
}
