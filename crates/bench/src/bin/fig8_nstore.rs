//! Fig. 8(i–l): N-Store YCSB read-heavy / balanced / update-heavy under all
//! four designs.

use apps::driver::Design;
use bench::workloads::{run_nstore, NstoreWorkload, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut rep = Report::new("Fig. 8(i-l) — N-Store (runtime, energy, NVM & cache accesses)");
    for wl in NstoreWorkload::all() {
        for design in Design::fig8() {
            eprintln!("running nstore {} under {design} ...", wl.label());
            let out = run_nstore(design, wl, &scale).expect("workload failed");
            rep.push(Row::new(wl.label(), design, &out.stats, &out.cfg));
        }
    }
    rep.emit("fig8_nstore");
}
