//! Fig. 8(i–l): N-Store YCSB read-heavy / balanced / update-heavy under all
//! four designs.

use apps::driver::Design;
use bench::runner::{self, Cell};
use bench::workloads::{run_nstore, NstoreWorkload, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut cells = Vec::new();
    for wl in NstoreWorkload::all() {
        for design in Design::fig8() {
            let s = scale.clone();
            cells.push(Cell::new(
                format!("nstore {} {design}", wl.label()),
                move || {
                    let out = run_nstore(design, wl, &s).expect("workload failed");
                    (wl.label(), design, out)
                },
            ));
        }
    }
    let results = runner::run_cells(cells, runner::jobs());
    runner::eprint_rates(&results, |(_, _, out)| out.stats.runtime_cycles());
    let mut rep = Report::new("Fig. 8(i-l) — N-Store (runtime, energy, NVM & cache accesses)");
    for r in &results {
        let (label, design, out) = &r.value;
        rep.push(Row::new(label, *design, &out.stats, &out.cfg).weave(out.weave_eligibility));
    }
    rep.emit("fig8_nstore");
}
