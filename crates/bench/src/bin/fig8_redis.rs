//! Fig. 8(a–d): Redis set-only and get-only under all four designs.

use apps::driver::Design;
use bench::workloads::{run_redis, RedisWorkload, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut rep = Report::new("Fig. 8(a-d) — Redis (runtime, energy, NVM & cache accesses)");
    for wl in [RedisWorkload::SetOnly, RedisWorkload::GetOnly] {
        for design in Design::fig8() {
            eprintln!("running redis {} under {design} ...", wl.label());
            let out = run_redis(design, wl, &scale).expect("workload failed");
            rep.push(Row::new(wl.label(), design, &out.stats, &out.cfg));
        }
    }
    rep.emit("fig8_redis");
}
