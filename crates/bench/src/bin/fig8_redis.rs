//! Fig. 8(a–d): Redis set-only and get-only under all four designs.

use apps::driver::Design;
use bench::runner::{self, Cell};
use bench::workloads::{run_redis, RedisWorkload, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut cells = Vec::new();
    for wl in [RedisWorkload::SetOnly, RedisWorkload::GetOnly] {
        for design in Design::fig8() {
            let s = scale.clone();
            cells.push(Cell::new(
                format!("redis {} {design}", wl.label()),
                move || {
                    let out = run_redis(design, wl, &s).expect("workload failed");
                    (wl.label(), design, out)
                },
            ));
        }
    }
    let results = runner::run_cells(cells, runner::jobs());
    runner::eprint_rates(&results, |(_, _, out)| out.stats.runtime_cycles());
    let mut rep = Report::new("Fig. 8(a-d) — Redis (runtime, energy, NVM & cache accesses)");
    for r in &results {
        let (label, design, out) = &r.value;
        rep.push(Row::new(label, *design, &out.stats, &out.cfg).weave(out.weave_eligibility));
    }
    rep.emit("fig8_redis");
}
