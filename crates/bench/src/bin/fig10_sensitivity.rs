//! Fig. 10: sensitivity of TVARAK to the LLC way-partition sizes.
//!
//! (a) sweep the redundancy-caching ways over {1, 2, 4, 6, 8} with 1 diff
//! way; (b) sweep the data-diff ways over {1, 2, 4, 6, 8} with 2 redundancy
//! ways — for the same five workloads as Fig. 9. Pass `redundancy`, `diffs`,
//! or nothing (both) as an argument.

use apps::driver::Design;
use apps::fio::Pattern;
use apps::stream::Kernel;
use bench::workloads::{
    run_fio, run_kv, run_nstore, run_redis, run_stream, KvKind, KvWorkload, NstoreWorkload,
    RedisWorkload, Scale, Variant,
};
use bench::{Report, Row};

const WAYS: [usize; 4] = [1, 2, 4, 8];

fn run_all(rep: &mut Report, label: &str, v: Variant, scale: &Scale) {
    let outs = vec![
        (
            "redis/set",
            run_redis(v.clone(), RedisWorkload::SetOnly, scale).expect("redis failed"),
        ),
        (
            "ctree/insert",
            run_kv(v.clone(), KvKind::CTree, KvWorkload::InsertOnly, scale).expect("ctree failed"),
        ),
        (
            "nstore/bal",
            run_nstore(v.clone(), NstoreWorkload::Balanced, scale).expect("nstore failed"),
        ),
        (
            "fio/rand-wr",
            run_fio(v.clone(), Pattern::RandWrite, scale).expect("fio failed"),
        ),
        (
            "stream/triad",
            run_stream(v.clone(), Kernel::Triad, scale).expect("stream failed"),
        ),
    ];
    for (wl, out) in outs {
        let mut row = Row::new(wl, v.design, &out.stats, &out.cfg);
        row.design = label.to_string();
        rep.push(row);
    }
}

fn main() {
    let scale = Scale::from_env();
    let which = std::env::args().nth(1).unwrap_or_default();
    if which.is_empty() || which == "redundancy" {
        let mut rep = Report::new("Fig. 10(a) — sensitivity to LLC ways for redundancy caching");
        // Baseline rows for normalization.
        run_all(&mut rep, "Baseline", Variant::of(Design::Baseline), &scale);
        for ways in WAYS {
            eprintln!("redundancy ways = {ways} ...");
            let v = Variant::of(Design::Tvarak).redundancy_ways(ways).diff_ways(1);
            run_all(&mut rep, &format!("Tvarak(red={ways})"), v, &scale);
        }
        rep.emit("fig10a_redundancy_ways");
    }
    if which.is_empty() || which == "diffs" {
        let mut rep = Report::new("Fig. 10(b) — sensitivity to LLC ways for data diffs");
        run_all(&mut rep, "Baseline", Variant::of(Design::Baseline), &scale);
        for ways in WAYS {
            eprintln!("diff ways = {ways} ...");
            let v = Variant::of(Design::Tvarak).redundancy_ways(2).diff_ways(ways);
            run_all(&mut rep, &format!("Tvarak(diff={ways})"), v, &scale);
        }
        rep.emit("fig10b_diff_ways");
    }
}
