//! §IV-H: sensitivity to the number of NVM DIMMs and the NVM technology.
//!
//! Reruns the stream microbenchmarks (where the paper reports the effect)
//! with 8 NVM DIMMs and with battery-backed DRAM standing in for NVM,
//! checking that the relative ordering of designs is unchanged.

use apps::driver::Design;
use apps::stream::Kernel;
use bench::workloads::{run_stream, Scale, Variant};
use bench::{Report, Row};

fn sweep(rep: &mut Report, tag: &str, make: impl Fn(Design) -> Variant, scale: &Scale) {
    for design in Design::fig8() {
        for kernel in [Kernel::Copy, Kernel::Triad] {
            eprintln!("stream {} under {design} ({tag}) ...", kernel.label());
            let out = run_stream(make(design), kernel, scale).expect("stream failed");
            rep.push(Row::new(
                &format!("{}/{}", tag, kernel.label()),
                design,
                &out.stats,
                &out.cfg,
            ));
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut rep = Report::new("§IV-H — NVM DIMM count and NVM technology scaling (stream)");
    sweep(&mut rep, "4dimm", Variant::of, &scale);
    sweep(&mut rep, "8dimm", |d| Variant::of(d).nvm_dimms(8), &scale);
    sweep(&mut rep, "bbdram", |d| Variant::of(d).dram_as_nvm(), &scale);
    rep.emit("sec4h_scaling");
}
