//! Long-horizon soak campaign: fio and KV under every design, measured as
//! interval snapshots streaming to CSV (DESIGN.md §16).
//!
//! Each cell drives one (app × design) pair for `--intervals` measurement
//! intervals of `--ops-per-interval` ops per instance, capturing per-interval
//! throughput, cache hit rates, NVM traffic, and `serve::Hist` latency tails
//! without ever holding whole-horizon state. After every cell, the merged
//! interval rows are checked bit-identical against the machine's own
//! monolithic accumulation (`Stats::delta_since` oracle) — any mismatch
//! makes the campaign exit non-zero.
//!
//! Output: `results/soak_campaign.csv` plus a stdout table. Cells execute
//! on the `bench::runner` pool; CSV and stdout are byte-identical at any
//! `--jobs` width. Peak-RSS telemetry goes to stderr only (it is
//! host-dependent and must not enter the deterministic artifacts).

use apps::driver::Design;
use apps::fio::Pattern;
use bench::runner::{self, Cell};
use bench::soak::{soak_fio, soak_kv, SoakConfig, SoakOutcome};
use bench::workloads::{KvKind, KvWorkload, Scale};
use std::fmt::Write as _;

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut cfg = SoakConfig::from_scale(&scale);
    let mut args = runner::positional_args().into_iter();
    while let Some(a) = args.next() {
        let val = |v: Option<String>| {
            v.and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| {
                eprintln!("expected a positive integer value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--intervals" => cfg.intervals = val(args.next()).max(1),
            "--ops-per-interval" => cfg.ops_per_interval = val(args.next()).max(1),
            other => {
                let parsed = other
                    .strip_prefix("--intervals=")
                    .map(|v| cfg.intervals = val(Some(v.to_string())).max(1))
                    .or_else(|| {
                        other
                            .strip_prefix("--ops-per-interval=")
                            .map(|v| cfg.ops_per_interval = val(Some(v.to_string())).max(1))
                    });
                if parsed.is_none() {
                    eprintln!(
                        "unknown argument {other:?} (expected --intervals, \
                         --ops-per-interval, --jobs)"
                    );
                    std::process::exit(2);
                }
            }
        }
    }

    println!(
        "# Soak campaign — {} intervals x {} ops/instance/interval, fio {} threads / kv {} instances",
        cfg.intervals, cfg.ops_per_interval, scale.fio_threads, scale.kv_instances
    );

    let mut cells: Vec<Cell<(&'static str, Design, SoakOutcome)>> = Vec::new();
    for design in Design::all() {
        let (s, c) = (scale.clone(), cfg.clone());
        cells.push(Cell::new(format!("soak fio-randwrite {design}"), move || {
            let out = soak_fio(design, Pattern::RandWrite, &s, &c).expect("fio soak failed");
            ("fio-randwrite", design, out)
        }));
        let (s, c) = (scale.clone(), cfg.clone());
        cells.push(Cell::new(format!("soak kv-btree-bal {design}"), move || {
            let out = soak_kv(design, KvKind::BTree, KvWorkload::Balanced, &s, &c)
                .expect("kv soak failed");
            ("kv-btree-bal", design, out)
        }));
    }

    let results = runner::run_cells(cells, runner::jobs());
    runner::eprint_rates(&results, |(_, _, out)| out.monolithic.runtime_cycles());

    let mut csv = String::from(
        "app,design,interval,ops,cum_cycles,interval_cycles,ops_per_mcycle,\
         l1d_hit_pct,llc_hit_pct,tvarak_hit_pct,nvm_data,nvm_red,dram,\
         lat_p50,lat_p99,lat_p999,lat_max,content_hash\n",
    );
    println!(
        "{:<14} {:<17} {:>8} {:>7} {:>12} {:>9} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "app", "design", "interval", "ops", "cycles", "ops/Mcyc", "llc%", "tv$%", "p50", "p99", "p999"
    );
    let mut failures = 0usize;
    for r in &results {
        let (app, design, out) = &r.value;
        for row in &out.rows {
            let c = &row.delta.counters;
            let ops_per_mcycle = row.ops as f64 * 1e6 / (row.interval_cycles.max(1)) as f64;
            let l1d = percent(c.l1d_hits, c.l1d_hits + c.l1d_misses);
            let llc = percent(c.llc_hits, c.llc_hits + c.llc_misses);
            let tv = percent(c.tvarak_cache_hits, c.tvarak_accesses());
            let _ = writeln!(
                csv,
                "{app},{},{},{},{},{},{ops_per_mcycle:.3},{l1d:.4},{llc:.4},{tv:.4},{},{},{},{},{},{},{},-",
                design.label(),
                row.interval,
                row.ops,
                row.cum_runtime_cycles,
                row.interval_cycles,
                c.nvm_data(),
                c.nvm_redundancy(),
                c.dram_accesses,
                row.lat.p50(),
                row.lat.p99(),
                row.lat.p999(),
                row.lat.max(),
            );
            println!(
                "{:<14} {:<17} {:>8} {:>7} {:>12} {:>9.3} {:>7.2} {:>7.2} {:>8} {:>8} {:>8}",
                app,
                design.label(),
                row.interval,
                row.ops,
                row.interval_cycles,
                ops_per_mcycle,
                llc,
                tv,
                row.lat.p50(),
                row.lat.p99(),
                row.lat.p999(),
            );
        }
        // Whole-horizon oracle row: the machine's own monolithic totals.
        let c = &out.monolithic.counters;
        let total_ops: u64 = out.rows.iter().map(|r| r.ops).sum();
        let cycles = out.monolithic.runtime_cycles();
        let _ = writeln!(
            csv,
            "{app},{},total,{total_ops},{cycles},{cycles},{:.3},{:.4},{:.4},{:.4},{},{},{},-,-,-,-,{:016x}",
            design.label(),
            total_ops as f64 * 1e6 / cycles.max(1) as f64,
            percent(c.l1d_hits, c.l1d_hits + c.l1d_misses),
            percent(c.llc_hits, c.llc_hits + c.llc_misses),
            percent(c.tvarak_cache_hits, c.tvarak_accesses()),
            c.nvm_data(),
            c.nvm_redundancy(),
            c.dram_accesses,
            out.content_hash,
        );
        if let Err(e) = out.verify() {
            eprintln!("SOAK INVARIANT VIOLATION [{app} {design}]: {e}");
            failures += 1;
        }
    }

    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/soak_campaign.csv", &csv);
    eprintln!("[saved results/soak_campaign.csv]");
    if let Some(kb) = runner::peak_rss_kb() {
        eprintln!("[peak RSS: {kb} KiB across {} cells]", results.len());
    }
    if failures > 0 {
        eprintln!("{failures} soak cell(s) violated the snapshot-merge invariant");
        std::process::exit(1);
    }
}
