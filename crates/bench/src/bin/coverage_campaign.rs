//! Fault-injection coverage campaign: Table I's verification column,
//! quantified.
//!
//! For each design, many trials each inject one silent media corruption
//! (a firmware-style bit flip) into a DAX-mapped file, then run a stream of
//! random reads. We record whether the corruption is detected *inline* (on a
//! verified read — only TVARAK designs can), how many wrong-data reads the
//! application consumed before any detection, whether a background scrub
//! pass would have caught it afterwards (the software designs' mechanism),
//! and whether parity recovery restored the data.
//!
//! Expected outcome (Table I): TVARAK detects on first touch and recovers;
//! TxB-* designs consume corrupted data silently and only a scrub finds it;
//! Baseline never finds it.

use apps::driver::{Design, Machine};
use apps::rng::Rng;
use bench::runner::{self, Cell};
use tvarak::controller::TvarakConfig;
use tvarak::scrub::{ScrubGranularity, Scrubber};

const TRIALS: u64 = 40;
const FILE_BYTES: u64 = 64 * 1024;
const READS: u64 = 400;

#[derive(Default)]
struct Tally {
    trials: u64,
    detected_inline: u64,
    wrong_data_reads: u64,
    detected_by_scrub: u64,
    recovered: u64,
    undetected: u64,
}

fn pattern(line: u64) -> [u8; 64] {
    let mut p = [0u8; 64];
    for (i, b) in p.iter_mut().enumerate() {
        *b = (line as u8).wrapping_mul(31).wrapping_add(i as u8);
    }
    p
}

impl Tally {
    /// Fold one trial's counts into the per-design aggregate. Every field
    /// is a sum, so the aggregate is independent of merge order — but the
    /// runner hands results back in input order anyway.
    fn merge(&mut self, other: &Tally) {
        self.trials += other.trials;
        self.detected_inline += other.detected_inline;
        self.wrong_data_reads += other.wrong_data_reads;
        self.detected_by_scrub += other.detected_by_scrub;
        self.recovered += other.recovered;
        self.undetected += other.undetected;
    }
}

fn run_trial(design: Design, trial: u64) -> Tally {
    let mut tally = Tally {
        trials: 1,
        ..Tally::default()
    };
    let mut m = Machine::builder()
        .small()
        .design(design)
        .data_pages(128)
        .build();
    let file = m.create_dax_file("victim", FILE_BYTES).unwrap();
    let lines = file.len() / 64;
    for l in 0..lines {
        file.write(&mut m.sys, 0, l * 64, &pattern(l)).unwrap();
    }
    m.flush();
    m.reinit_redundancy(&file);

    // One silent bit flip at a random media location.
    let mut rng = Rng::new(0x5eed_0000 + trial);
    let victim = rng.below(lines);
    let bit = rng.below(512) as usize;
    let line_addr = file.addr(victim * 64).line();
    let mut data = m.sys.memory().peek_line(line_addr);
    data[bit / 8] ^= 1 << (bit % 8);
    m.sys.memory_mut().poke_line(line_addr, &data);

    // Random reads; the corrupted line is guaranteed to be among them.
    let mut detected = false;
    for i in 0..READS {
        let l = if i == READS / 2 { victim } else { rng.below(lines) };
        let mut buf = [0u8; 64];
        match file.read(&mut m.sys, 0, l * 64, &mut buf) {
            Ok(()) => {
                if buf != pattern(l) {
                    tally.wrong_data_reads += 1;
                }
            }
            Err(err) => {
                detected = true;
                tally.detected_inline += 1;
                if m.recover(err.line.page()).is_ok() {
                    tally.recovered += 1;
                }
                break;
            }
        }
    }
    if !detected {
        // Background scrub pass (the software designs' safety net).
        let granularity = match design {
            Design::TxbObject => ScrubGranularity::CacheLine,
            _ => ScrubGranularity::Page,
        };
        let layout = *m.fs.layout();
        let mut scrubber = Scrubber::new(
            layout,
            granularity,
            file.first_data_index(),
            file.pages(),
        );
        match scrubber.step(&mut m.sys, 0, file.pages()) {
            Ok(findings) if !findings.is_empty() => tally.detected_by_scrub += 1,
            Ok(_) => tally.undetected += 1,
            Err(err) => {
                // Controller beat the scrubber: count the detection AND run
                // the same recovery path the inline arm does, so the
                // recovered column is comparable across designs.
                tally.detected_inline += 1;
                if m.recover(err.line.page()).is_ok() {
                    tally.recovered += 1;
                }
            }
        }
    }
    tally
}

fn main() {
    println!("# Coverage campaign — {TRIALS} single-bit media corruptions per design");
    println!(
        "{:<20} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "design", "inline", "wrong-reads", "by-scrub", "undetected", "recovered"
    );
    let designs = [
        Design::Baseline,
        Design::Tvarak,
        Design::TvarakAblated(TvarakConfig::naive()),
        Design::TxbObject,
        Design::TxbPage,
    ];
    // One cell per (design, trial): each trial builds its own Machine, so
    // the grid parallelizes at full granularity. Results come back in input
    // order and tally fields are sums, so the aggregates — and the CSV —
    // are identical at every --jobs setting.
    let cells: Vec<Cell<(usize, Tally)>> = designs
        .iter()
        .enumerate()
        .flat_map(|(d, &design)| {
            (0..TRIALS).map(move |trial| {
                Cell::new(format!("{} trial {trial}", design.label()), move || {
                    (d, run_trial(design, trial))
                })
            })
        })
        .collect();
    let results = runner::run_cells(cells, runner::jobs());
    let mut tallies: Vec<Tally> = designs.iter().map(|_| Tally::default()).collect();
    for r in &results {
        let (d, tally) = &r.value;
        tallies[*d].merge(tally);
    }
    let mut csv = String::from("design,inline,wrong_reads,by_scrub,undetected,recovered\n");
    for (design, tally) in designs.iter().zip(&tallies) {
        assert_eq!(tally.trials, TRIALS, "lost trials for {}", design.label());
        println!(
            "{:<20} {:>10} {:>12} {:>10} {:>10} {:>12}",
            design.label(),
            tally.detected_inline,
            tally.wrong_data_reads,
            tally.detected_by_scrub,
            tally.undetected,
            tally.recovered
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            design.label(),
            tally.detected_inline,
            tally.wrong_data_reads,
            tally.detected_by_scrub,
            tally.undetected,
            tally.recovered
        ));
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/coverage_campaign.csv", csv);
    eprintln!("[saved results/coverage_campaign.csv]");
}
