//! Fig. 9: impact of TVARAK's design choices.
//!
//! One workload per application class (the paper's selection): Redis
//! set-only, C-Tree insert-only, N-Store balanced, fio random-write, stream
//! triad — under the naive controller and then adding each design element:
//!
//! 1. `Naive` — page-granular checksums, no caching, no diffs (Fig. 4/5)
//! 2. `+DAX-CL-csums` — cache-line granular checksums
//! 3. `+Red-caching` — on-controller cache + LLC redundancy partition
//!    (this row is also TVARAK for systems with *exclusive* LLCs, §IV-G)
//! 4. `+Data-diffs` — the complete TVARAK design

use apps::driver::Design;
use apps::fio::Pattern;
use apps::stream::Kernel;
use bench::runner::{self, Cell};
use bench::workloads::{
    run_fio, run_kv, run_nstore, run_redis, run_stream, KvKind, KvWorkload, NstoreWorkload,
    Outcome, RedisWorkload, Scale,
};
use bench::{Report, Row};
use tvarak::controller::TvarakConfig;

fn variants() -> Vec<(&'static str, Design)> {
    let naive = TvarakConfig::naive();
    let mut cl = naive;
    cl.cl_granular_csums = true;
    let mut cl_cache = cl;
    cl_cache.redundancy_caching = true;
    vec![
        ("Baseline", Design::Baseline),
        ("Naive", Design::TvarakAblated(naive)),
        ("+DAX-CL-csums", Design::TvarakAblated(cl)),
        ("+Red-caching", Design::TvarakAblated(cl_cache)),
        ("+Data-diffs(=Tvarak)", Design::Tvarak),
    ]
}

/// The five (workload, group) sweeps, one runner per variant each.
fn workload_cells(scale: &Scale, run_a: bool, run_b: bool) -> Vec<Cell<(String, &'static str, Design, Outcome)>> {
    let mut cells = Vec::new();
    let mut push =
        |enabled: bool,
         workload: &'static str,
         name: &'static str,
         design: Design,
         run: Box<dyn FnOnce() -> Outcome + Send>| {
            if enabled {
                cells.push(Cell::new(format!("{workload} {name}"), move || {
                    (workload.to_string(), name, design, run())
                }));
            }
        };
    for (name, design) in variants() {
        let s = scale.clone();
        push(
            run_a,
            "redis/set",
            name,
            design,
            Box::new(move || run_redis(design, RedisWorkload::SetOnly, &s).expect("redis failed")),
        );
    }
    for (name, design) in variants() {
        let s = scale.clone();
        push(
            run_a,
            "ctree/insert",
            name,
            design,
            Box::new(move || {
                run_kv(design, KvKind::CTree, KvWorkload::InsertOnly, &s).expect("ctree failed")
            }),
        );
    }
    for (name, design) in variants() {
        let s = scale.clone();
        push(
            run_b,
            "nstore/bal",
            name,
            design,
            Box::new(move || {
                run_nstore(design, NstoreWorkload::Balanced, &s).expect("nstore failed")
            }),
        );
    }
    for (name, design) in variants() {
        let s = scale.clone();
        push(
            run_b,
            "fio/rand-wr",
            name,
            design,
            Box::new(move || run_fio(design, Pattern::RandWrite, &s).expect("fio failed")),
        );
    }
    for (name, design) in variants() {
        let s = scale.clone();
        push(
            run_b,
            "stream/triad",
            name,
            design,
            Box::new(move || run_stream(design, Kernel::Triad, &s).expect("stream failed")),
        );
    }
    cells
}

fn main() {
    let scale = Scale::from_env();
    // Optional group filter so long sweeps fit in bounded CI slots:
    // `a` = redis+ctree, `b` = nstore+fio+stream, default = all.
    let group = runner::positional_args().into_iter().next().unwrap_or_default();
    let (run_a, run_b) = match group.as_str() {
        "a" => (true, false),
        "b" => (false, true),
        _ => (true, true),
    };
    let cells = workload_cells(&scale, run_a, run_b);
    let results = runner::run_cells(cells, runner::jobs());
    runner::eprint_rates(&results, |(_, _, _, out)| out.stats.runtime_cycles());
    let mut rep = Report::new("Fig. 9 — Impact of TVARAK's design choices (runtime)");
    for r in &results {
        let (workload, name, design, out) = &r.value;
        let mut row = Row::new(workload, *design, &out.stats, &out.cfg);
        row.design = name.to_string();
        rep.push(row);
    }
    let name = match group.as_str() {
        "a" => "fig9_ablation_a",
        "b" => "fig9_ablation_b",
        _ => "fig9_ablation",
    };
    rep.emit(name);
}
