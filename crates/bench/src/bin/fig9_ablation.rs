//! Fig. 9: impact of TVARAK's design choices.
//!
//! One workload per application class (the paper's selection): Redis
//! set-only, C-Tree insert-only, N-Store balanced, fio random-write, stream
//! triad — under the naive controller and then adding each design element:
//!
//! 1. `Naive` — page-granular checksums, no caching, no diffs (Fig. 4/5)
//! 2. `+DAX-CL-csums` — cache-line granular checksums
//! 3. `+Red-caching` — on-controller cache + LLC redundancy partition
//!    (this row is also TVARAK for systems with *exclusive* LLCs, §IV-G)
//! 4. `+Data-diffs` — the complete TVARAK design

use apps::driver::Design;
use apps::fio::Pattern;
use apps::stream::Kernel;
use bench::workloads::{
    run_fio, run_kv, run_nstore, run_redis, run_stream, KvKind, KvWorkload, NstoreWorkload,
    RedisWorkload, Scale,
};
use bench::{Report, Row};
use tvarak::controller::TvarakConfig;

fn variants() -> Vec<(&'static str, Design)> {
    let naive = TvarakConfig::naive();
    let mut cl = naive;
    cl.cl_granular_csums = true;
    let mut cl_cache = cl;
    cl_cache.redundancy_caching = true;
    vec![
        ("Baseline", Design::Baseline),
        ("Naive", Design::TvarakAblated(naive)),
        ("+DAX-CL-csums", Design::TvarakAblated(cl)),
        ("+Red-caching", Design::TvarakAblated(cl_cache)),
        ("+Data-diffs(=Tvarak)", Design::Tvarak),
    ]
}

fn main() {
    let scale = Scale::from_env();
    // Optional group filter so long sweeps fit in bounded CI slots:
    // `a` = redis+ctree, `b` = nstore+fio+stream, default = all.
    let group = std::env::args().nth(1).unwrap_or_default();
    let (run_a, run_b) = match group.as_str() {
        "a" => (true, false),
        "b" => (false, true),
        _ => (true, true),
    };
    let mut rep = Report::new("Fig. 9 — Impact of TVARAK's design choices (runtime)");
    for (name, design) in variants().into_iter().filter(|_| run_a) {
        eprintln!("redis/set-only under {name} ...");
        let out = run_redis(design, RedisWorkload::SetOnly, &scale).expect("redis failed");
        let mut row = Row::new("redis/set", design, &out.stats, &out.cfg);
        row.design = name.to_string();
        rep.push(row);
    }
    for (name, design) in variants().into_iter().filter(|_| run_a) {
        eprintln!("ctree/insert-only under {name} ...");
        let out =
            run_kv(design, KvKind::CTree, KvWorkload::InsertOnly, &scale).expect("ctree failed");
        let mut row = Row::new("ctree/insert", design, &out.stats, &out.cfg);
        row.design = name.to_string();
        rep.push(row);
    }
    for (name, design) in variants().into_iter().filter(|_| run_b) {
        eprintln!("nstore/balanced under {name} ...");
        let out = run_nstore(design, NstoreWorkload::Balanced, &scale).expect("nstore failed");
        let mut row = Row::new("nstore/bal", design, &out.stats, &out.cfg);
        row.design = name.to_string();
        rep.push(row);
    }
    for (name, design) in variants().into_iter().filter(|_| run_b) {
        eprintln!("fio/rand-write under {name} ...");
        let out = run_fio(design, Pattern::RandWrite, &scale).expect("fio failed");
        let mut row = Row::new("fio/rand-wr", design, &out.stats, &out.cfg);
        row.design = name.to_string();
        rep.push(row);
    }
    for (name, design) in variants().into_iter().filter(|_| run_b) {
        eprintln!("stream/triad under {name} ...");
        let out = run_stream(design, Kernel::Triad, &scale).expect("stream failed");
        let mut row = Row::new("stream/triad", design, &out.stats, &out.cfg);
        row.design = name.to_string();
        rep.push(row);
    }
    let name = match group.as_str() {
        "a" => "fig9_ablation_a",
        "b" => "fig9_ablation_b",
        _ => "fig9_ablation",
    };
    rep.emit(name);
}
