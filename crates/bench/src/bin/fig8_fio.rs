//! Fig. 8(m–p): fio sequential/random read/write under all four designs.

use apps::driver::Design;
use apps::fio::Pattern;
use bench::workloads::{run_fio, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut rep = Report::new("Fig. 8(m-p) — fio (runtime, energy, NVM & cache accesses)");
    for pattern in Pattern::all() {
        for design in Design::fig8() {
            eprintln!("running fio {} under {design} ...", pattern.label());
            let out = run_fio(design, pattern, &scale).expect("workload failed");
            rep.push(Row::new(pattern.label(), design, &out.stats, &out.cfg));
        }
    }
    rep.emit("fig8_fio");
}
