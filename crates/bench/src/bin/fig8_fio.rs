//! Fig. 8(m–p): fio sequential/random read/write under all four designs.

use apps::driver::Design;
use apps::fio::Pattern;
use bench::runner::{self, Cell};
use bench::workloads::{run_fio, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut cells = Vec::new();
    for pattern in Pattern::all() {
        for design in Design::fig8() {
            let s = scale.clone();
            cells.push(Cell::new(
                format!("fio {} {design}", pattern.label()),
                move || {
                    let out = run_fio(design, pattern, &s).expect("workload failed");
                    (pattern.label(), design, out)
                },
            ));
        }
    }
    let results = runner::run_cells(cells, runner::jobs());
    runner::eprint_rates(&results, |(_, _, out)| out.stats.runtime_cycles());
    let mut rep = Report::new("Fig. 8(m-p) — fio (runtime, energy, NVM & cache accesses)");
    for r in &results {
        let (label, design, out) = &r.value;
        rep.push(Row::new(label, *design, &out.stats, &out.cfg).weave(out.weave_eligibility));
    }
    rep.emit("fig8_fio");
}
