//! Open-loop request-serving campaign: throughput vs offered load and
//! p50/p99/p999 tail latency for every redundancy design.
//!
//! Sweeps the offered-load ladder (`bench::serve::gap_ladder`) for each
//! (app, design) pair: a seeded open-loop arrival stream (design-independent,
//! so designs compete on identical request sequences) drains through
//! per-core bounded queues with admission control into the app running on
//! the simulated machine. Emits `results/serve_campaign.csv` plus a stdout
//! table; cells run on the `--jobs` worker pool and the output is
//! byte-identical at any width.
//!
//! Flags (in addition to `--jobs N`):
//!
//! - `--knee` — after the ladder, run 3 geometric-bisection rounds per
//!   (app, design) pair to bracket the saturation knee (the heaviest load
//!   served without shedding) and report the estimate.
//! - `--arrival <uniform|poisson|bursty[:mult]>` — arrival process
//!   (default `poisson`).
//! - `--policy <shed|block>` — admission policy (default `shed`).
//!
//! Environment: `TVARAK_SCALE=quick|reduced` shrinks the sweep;
//! `SERVE_APPS=fio,kv,redis` selects apps (default `fio,kv`).
//!
//! Exits non-zero if any accounting invariant breaks (offered must equal
//! accepted + shed at every point, every admitted request must complete)
//! or — under the shed policy — if no sweep point lands past the
//! saturation knee.

use bench::runner;
use bench::serve::{run_campaign, to_csv, check_invariants, CampaignConfig};

fn main() {
    let mut cfg = CampaignConfig::from_env();
    let mut args = runner::positional_args().into_iter();
    while let Some(a) = args.next() {
        let parse_val = |name: &str, v: Option<String>| -> String {
            v.unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--knee" => cfg.knee_rounds = 3,
            "--arrival" => {
                cfg.process = parse_val("--arrival", args.next()).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--policy" => {
                cfg.policy = parse_val("--policy", args.next()).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            other => {
                let parsed = other
                    .strip_prefix("--arrival=")
                    .map(|v| v.parse().map(|p| cfg.process = p).map_err(|e| format!("{e}")))
                    .or_else(|| {
                        other
                            .strip_prefix("--policy=")
                            .map(|v| v.parse().map(|p| cfg.policy = p).map_err(|e| format!("{e}")))
                    });
                match parsed {
                    Some(Ok(())) => {}
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!(
                            "unknown argument {other:?} (expected --knee, --arrival, \
                             --policy, --jobs)"
                        );
                        std::process::exit(2);
                    }
                }
            }
        }
    }

    println!(
        "# Open-loop serving campaign — {} arrivals, {} policy, {} requests/point, \
         {} serving cores, queue depth {}",
        cfg.process, cfg.policy, cfg.scale.requests, cfg.scale.serving_cores, cfg.scale.depth
    );
    let (rows, estimates) = run_campaign(&cfg, runner::jobs());

    println!(
        "{:<6} {:<6} {:<17} {:>9} {:>9} {:>9} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "phase", "app", "design", "gap", "off/kc", "srv/kc", "shed", "peakq", "p50", "p99", "p999"
    );
    for r in &rows {
        let rep = &r.report;
        println!(
            "{:<6} {:<6} {:<17} {:>9.2} {:>9.4} {:>9.4} {:>6} {:>6} {:>8} {:>8} {:>8}",
            r.phase,
            r.app.label(),
            r.design.label(),
            r.mean_gap,
            1000.0 / r.mean_gap,
            rep.throughput_per_kcycle(),
            rep.shed,
            rep.peak_depth,
            rep.latency.p50(),
            rep.latency.p99(),
            rep.latency.p999(),
        );
    }
    for e in &estimates {
        match e.knee_gap {
            Some(g) => println!(
                "knee   {:<6} {:<17} gap {:>9.2} cycles ({:.4} req/kcycle sustained)",
                e.app.label(),
                e.design.label(),
                g,
                1000.0 / g
            ),
            None => println!(
                "knee   {:<6} {:<17} not bracketed by the ladder",
                e.app.label(),
                e.design.label()
            ),
        }
    }

    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/serve_campaign.csv", to_csv(&rows, &estimates));
    eprintln!("[saved results/serve_campaign.csv]");

    if let Err(v) = check_invariants(&rows) {
        eprintln!("INVARIANT VIOLATION: {v}");
        std::process::exit(1);
    }
    println!("all serving invariants held");
}
