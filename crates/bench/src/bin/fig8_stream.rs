//! Fig. 8(q–t): stream copy/scale/add/triad under all four designs.

use apps::driver::Design;
use apps::stream::Kernel;
use bench::workloads::{run_stream, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut rep = Report::new("Fig. 8(q-t) — stream (runtime, energy, NVM & cache accesses)");
    for kernel in Kernel::all() {
        for design in Design::fig8() {
            eprintln!("running stream {} under {design} ...", kernel.label());
            let out = run_stream(design, kernel, &scale).expect("workload failed");
            rep.push(Row::new(kernel.label(), design, &out.stats, &out.cfg));
        }
    }
    rep.emit("fig8_stream");
}
