//! Fig. 8(q–t): stream copy/scale/add/triad under all four designs.

use apps::driver::Design;
use apps::stream::Kernel;
use bench::runner::{self, Cell};
use bench::workloads::{run_stream, Scale};
use bench::{Report, Row};

fn main() {
    let scale = Scale::from_env();
    let mut cells = Vec::new();
    for kernel in Kernel::all() {
        for design in Design::fig8() {
            let s = scale.clone();
            cells.push(Cell::new(
                format!("stream {} {design}", kernel.label()),
                move || {
                    let out = run_stream(design, kernel, &s).expect("workload failed");
                    (kernel.label(), design, out)
                },
            ));
        }
    }
    let results = runner::run_cells(cells, runner::jobs());
    runner::eprint_rates(&results, |(_, _, out)| out.stats.runtime_cycles());
    let mut rep = Report::new("Fig. 8(q-t) — stream (runtime, energy, NVM & cache accesses)");
    for r in &results {
        let (label, design, out) = &r.value;
        rep.push(Row::new(label, *design, &out.stats, &out.cfg).weave(out.weave_eligibility));
    }
    rep.emit("fig8_stream");
}
