//! Table III: print the simulated machine's parameters.

use memsim::config::SystemConfig;

fn main() {
    let c = SystemConfig::default();
    println!("# Table III — Simulation parameters");
    println!("cores: {} x86-64 OOO @ {} GHz", c.cores, c.freq_ghz);
    println!(
        "L1-D: {} KB {}-way, {} cycles, {}/{} pJ hit/miss",
        c.l1d.size_bytes / 1024, c.l1d.ways, c.l1d.latency_cycles, c.l1d.hit_pj, c.l1d.miss_pj
    );
    println!(
        "L1-I: {} KB {}-way, {} cycles, {}/{} pJ hit/miss",
        c.l1i.size_bytes / 1024, c.l1i.ways, c.l1i.latency_cycles, c.l1i.hit_pj, c.l1i.miss_pj
    );
    println!(
        "L2: {} KB {}-way, {} cycles, {}/{} pJ hit/miss",
        c.l2.size_bytes / 1024, c.l2.ways, c.l2.latency_cycles, c.l2.hit_pj, c.l2.miss_pj
    );
    println!(
        "LLC: {} MB ({} banks x {} MB), {}-way, {} cycles, shared+inclusive, MESI, 64B lines, {}/{} pJ hit/miss",
        c.llc.size_bytes * c.llc_banks / (1024 * 1024), c.llc_banks,
        c.llc.size_bytes / (1024 * 1024), c.llc.ways, c.llc.latency_cycles,
        c.llc.hit_pj, c.llc.miss_pj
    );
    println!("DRAM: {} DDR DIMMs, {} ns reads/writes", c.dram.dimms, c.dram.read_ns);
    println!(
        "NVM: {} DDR DIMMs, {}/{} ns reads/writes, {}/{} nJ per read/write",
        c.nvm.dimms, c.nvm.read_ns, c.nvm.write_ns, c.nvm.read_nj, c.nvm.write_nj
    );
    println!(
        "TVARAK: {} KB on-controller cache ({} cycle, {}/{} pJ hit/miss), {}-cycle range match, {}-cycle checksum/parity compute, {} LLC ways (of {}) for redundancy, {} for data diffs",
        c.controller.cache_bytes / 1024, c.controller.cache_latency_cycles,
        c.controller.cache_hit_pj, c.controller.cache_miss_pj,
        c.controller.range_match_cycles, c.controller.compute_cycles,
        c.controller.redundancy_ways, c.llc.ways, c.controller.diff_ways
    );
}
