//! Extension experiment: the standard YCSB core workloads (A, B, C, E, F)
//! on N-Store with a secondary B+tree index, under Baseline and TVARAK.
//!
//! Extends the paper's three YCSB mixes with scan-heavy (E, exercising the
//! ordered index) and read-modify-write (F) behaviour, checking that
//! TVARAK's overhead stays low across the full spectrum of operation mixes.

use apps::driver::{AppError, Design, Machine};
use apps::nstore::NStore;
use apps::ycsb::{Op, StandardMix, StandardWorkload};
use bench::workloads::{machine, Scale};
use bench::{Report, Row};

fn run(
    design: Design,
    wl: StandardWorkload,
    scale: &Scale,
) -> Result<bench::Outcome, AppError> {
    let tuples = (scale.nstore_tuples / 4).clamp(1024, 1 << 20);
    let txs = scale.nstore_txs / 2;
    let wal_bytes = (tuples + txs) * 160 + (1 << 20);
    // Index heap: ~37 B/key at worst-case B+tree fill, plus split churn
    // from the measured updates (the bump allocator does not reclaim).
    let index_bytes = tuples * 120 + txs * 128 + (1 << 20);
    let data_pages = tuples * 64 / 4096 + wal_bytes / 4096 + index_bytes / 4096 + 2000;
    let mut m: Machine = machine(design, data_pages);
    let mut txm = m.tx_manager(256 * 1024)?;
    let mut store = NStore::create(&mut m, tuples, wal_bytes)?;
    store.with_index_sized(&mut m, index_bytes)?;
    // Preload so scans and reads hit populated tuples (setup, unmeasured).
    for t in 0..tuples {
        let mut payload = [0u8; 64];
        payload[..8].copy_from_slice(&t.wrapping_mul(0x9e37).to_le_bytes());
        store.update(&mut m, &mut txm, 0, t, &payload)?;
    }
    m.flush();
    m.reset_stats();
    let clients = scale.nstore_clients;
    let mut mixes: Vec<StandardMix> = (0..clients)
        .map(|i| StandardMix::new(tuples, wl, 16, 0xdead + i as u64))
        .collect();
    let per_client = txs / clients as u64;
    apps::driver::run_clocked(&mut m, clients, per_client, |m, c, op| {
        match mixes[c].next_op() {
            Op::Update(k) => {
                let mut payload = [0u8; 64];
                payload[..8].copy_from_slice(&(op ^ k).to_le_bytes());
                store.update(m, &mut txm, c, k, &payload)?;
            }
            Op::Read(k) => {
                store.read(m, c, k)?;
            }
            Op::Scan(k, len) => {
                let lo = k.wrapping_mul(0x9e37) & ((1 << 44) - 1);
                let hits = store.scan_field(m, lo, lo.saturating_add(len * 1000))?;
                std::hint::black_box(hits);
            }
            Op::ReadModifyWrite(k) => {
                let mut payload = store.read(m, c, k)?;
                payload[8] = payload[8].wrapping_add(1);
                store.update(m, &mut txm, c, k, &payload)?;
            }
        }
        Ok(())
    })?;
    m.flush();
    Ok(bench::Outcome {
        design: m.design(),
        stats: m.stats(),
        cfg: m.sys.config().clone(),
        weave: None,
        content_hash: m.sys.memory().content_hash(),
        weave_eligibility: apps::driver::weave_eligibility(&m).as_str(),
        divergence: None,
    })
}

fn main() {
    let scale = Scale::from_env();
    let mut rep = Report::new("Extension — YCSB core workloads on indexed N-Store");
    for wl in [
        StandardWorkload::A,
        StandardWorkload::B,
        StandardWorkload::C,
        StandardWorkload::E,
        StandardWorkload::F,
    ] {
        for design in [Design::Baseline, Design::Tvarak] {
            eprintln!("{} under {design} ...", wl.label());
            let out = run(design, wl, &scale).expect("workload failed");
            rep.push(Row::new(wl.label(), design, &out.stats, &out.cfg));
        }
    }
    rep.emit("ycsb_suite");
}
