//! Tracked performance baseline for the simulator itself.
//!
//! Times four things and writes `BENCH_perf.json` in the working
//! directory so the trajectory is tracked from PR to PR:
//!
//! 1. **Checksum microbench** — CRC32C throughput in MiB/s over cache-line
//!    and page inputs. Three kernels: the byte-wise reference, the pinned
//!    *software* slice-by-8 path (comparable across hosts, so the CI gate
//!    keys on it), and whatever [`memsim::crc::update`] dispatches to —
//!    the `crc32` instruction where the host has it (`hw_crc32c` says).
//! 2. **Engine microbench** — a raw DAX read/write sweep on a small
//!    machine under the full TVARAK design, reported as simulated cycles
//!    per wall-clock second. Run N times, best taken: wall-clock minima
//!    are stable under scheduler noise where single shots swing ±40% on a
//!    shared box.
//! 3. **Hot-path microbenches** — `CacheArray` tag-scan and insert-evict
//!    rates and NVM page-store line read/write rates, isolating the two
//!    structures the engine spends most of its time in.
//! 4. **Trace codec microbench** — streaming `TraceWriter` encode and
//!    `TraceReader` decode throughput in MiB/s over a generated mixed
//!    op stream (chunked TVT2 format, DESIGN.md §16), plus the achieved
//!    bytes/record — the compression the delta/varint encoding buys.
//! 5. **Cell grid** — a fixed small fio grid (4 patterns × Baseline/Tvarak
//!    at quick scale) through `bench::runner`, reporting per-cell wall
//!    time, per-cell simulated throughput, and aggregate cells/sec.
//!
//! `--quick` shrinks the iteration counts for the CI smoke (the JSON shape
//! is identical); `--jobs N` / `MEMSIM_JOBS` control the cell-grid pool.

use apps::driver::{Design, Machine};
use apps::fio::Pattern;
use bench::runner::{self, Cell};
use bench::workloads::{run_fio, run_fio_threads, Outcome, Scale};
use memsim::addr::LineAddr;
use memsim::cache::CacheArray;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use tvarak::checksum::{crc32c, crc32c_bytewise};

/// The pinned software slice-by-8 kernel, bypassing hardware dispatch, so
/// the tracked `*_slice8` numbers stay host-comparable.
fn crc32c_sw(data: &[u8]) -> u32 {
    !memsim::crc::update_sw(u32::MAX, data)
}

/// MiB/s of `f` over `iters` passes of a `len`-byte buffer; best of 5.
fn checksum_throughput(f: fn(&[u8]) -> u32, len: usize, iters: u64) -> f64 {
    let buf: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
    // Warm up tables and cache.
    let mut sink = f(&buf);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            sink ^= f(black_box(&buf));
        }
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
    }
    black_box(sink);
    (len as u64 * iters) as f64 / (1024.0 * 1024.0) / best
}

/// One raw-DAX sweep: simulated cycles and wall seconds.
fn engine_sweep(ops: u64) -> (u64, f64) {
    let mut m = Machine::builder()
        .small()
        .design(Design::Tvarak)
        .data_pages(256)
        .build();
    let file = m
        .create_dax_file("perf", 64 * 1024)
        .expect("pool fits perf file");
    let lines = file.len() / 64;
    let start = Instant::now();
    let mut buf = [0u8; 64];
    for op in 0..ops {
        let l = (op * 0x9e37) % lines;
        if op % 4 == 0 {
            buf[0] = op as u8;
            file.write(&mut m.sys, 0, l * 64, &buf).expect("write");
        } else {
            file.read(&mut m.sys, 0, l * 64, &mut buf).expect("read");
        }
        if op % 1024 == 1023 {
            m.flush();
        }
    }
    m.flush();
    (m.stats().runtime_cycles(), start.elapsed().as_secs_f64())
}

/// Best-of-`runs` engine sweep (the sweep is deterministic, so
/// `sim_cycles` is identical across runs; only wall time varies).
fn engine_microbench(ops: u64, runs: usize) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..runs {
        let (cyc, wall) = engine_sweep(ops);
        cycles = cyc;
        best = best.min(wall);
    }
    (cycles, best)
}

/// One bound-weave scaling point: a 12-instance fio cell at `threads`
/// engine threads, best wall time of `runs`. Returns (sim_cycles, wall_s,
/// per-shard weave occupancy of the best run). The occupancy vector is the
/// schema-uniform telemetry: empty on the sequential path (threads 1 or a
/// diverged fallback), one entry per weave shard otherwise. `sim_cycles`
/// must be identical at every thread count — the caller asserts it.
fn scaling_point(scale: &Scale, threads: usize, runs: usize) -> (u64, f64, Vec<f64>) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    let mut occupancy = Vec::new();
    for _ in 0..runs {
        let start = Instant::now();
        let out = run_fio_threads(Design::Tvarak, Pattern::RandWrite, scale, threads)
            .expect("scaling cell failed");
        let wall = start.elapsed().as_secs_f64();
        cycles = out.stats.runtime_cycles();
        if wall < best {
            best = wall;
            occupancy = out.weave.map(|r| r.shard_occupancy()).unwrap_or_default();
        }
    }
    (cycles, best, occupancy)
}

/// Mops/s over `iters` calls of `op`, best of 3 passes.
fn best_rate(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for i in 0..iters {
            op(i);
        }
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
    }
    iters as f64 / best / 1e6
}

/// Isolated rates for the two hottest structures: (cache tag-scan misses,
/// cache insert-evicts, page-store line reads, page-store line writes),
/// all in Mops/s.
fn hotpath_microbench(iters: u64) -> (f64, f64, f64, f64) {
    // LLC-bank-like geometry; 4096-line footprint so inserts always evict.
    let mut c = CacheArray::new(64, 8, 1);
    let data = [0xa5u8; 64];
    let lookup = best_rate(iters, |i| {
        black_box(c.lookup(LineAddr(i.wrapping_mul(0x9e37) % 4096), 0..8));
    });
    let insert = best_rate(iters, |i| {
        black_box(c.insert(LineAddr(i.wrapping_mul(0x9e37) % 4096), &data, i % 4 == 0, 0..8));
    });

    let mut mem = memsim::Memory::new(4);
    let base = memsim::addr::NVM_BASE / 64;
    let read = best_rate(iters, |i| {
        black_box(mem.read_line(LineAddr((i.wrapping_mul(0x9e37) % 4096) + base)));
    });
    let write = best_rate(iters, |i| {
        mem.write_line(LineAddr((i.wrapping_mul(0x9e37) % 4096) + base), &data);
    });
    (lookup, insert, read, write)
}

/// Streaming trace-codec microbench: encode `records` generated mixed-op
/// records through a `TraceWriter` and decode them back through a
/// `TraceReader`, best wall time of 5 passes each. Returns
/// (encoded_bytes, encode_mib_s, decode_mib_s), throughput measured over
/// the encoded byte volume.
fn trace_microbench(records: u64) -> (u64, f64, f64) {
    use memsim::trace::{generate, TraceReader, TraceWriter};
    const SEED: u64 = 0xbead_cafe;
    const CORES: u8 = 8;
    const LINES: u64 = 1 << 18;
    let mut bytes = Vec::new();
    let mut best_enc = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let mut w = TraceWriter::new(Vec::with_capacity(bytes.len())).expect("vec write");
        for i in 0..records {
            w.push(generate::mixed_record(SEED, i, CORES, LINES))
                .expect("vec write");
        }
        bytes = w.finish().expect("vec write");
        best_enc = best_enc.min(start.elapsed().as_secs_f64().max(1e-9));
    }
    let mut best_dec = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let mut r = TraceReader::new(&bytes[..]).expect("magic");
        let mut n = 0u64;
        while let Some(rec) = r.next_record().expect("well-formed") {
            black_box(rec);
            n += 1;
        }
        assert_eq!(n, records, "decode must surface every record");
        best_dec = best_dec.min(start.elapsed().as_secs_f64().max(1e-9));
    }
    let mib = bytes.len() as f64 / (1024.0 * 1024.0);
    (bytes.len() as u64, mib / best_enc, mib / best_dec)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = runner::jobs();
    // Engine sweeps are deliberately short (tens of ms) and repeated many
    // times: on shared hardware the *minimum* over many short windows is
    // far more reproducible than any mean, because it only needs one
    // steal-free window.
    let (csum_iters, engine_ops, engine_runs, hot_iters) = if quick {
        (2_000, 20_000, 30, 200_000)
    } else {
        (40_000, 200_000, 25, 2_000_000)
    };
    let hw = memsim::crc::hw_available();
    // Detected hardware parallelism: the scaling points below only show real
    // speedup when the replay workers get their own cores, so readers (and
    // the CI gate) need this next to the curve to interpret it.
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("# host parallelism: {hw_threads} hardware thread(s)");

    eprintln!("# checksum microbench ({csum_iters} iters per input size, hw_crc32c={hw})");
    let line_by = checksum_throughput(crc32c_bytewise, 64, csum_iters * 8);
    let line_s8 = checksum_throughput(crc32c_sw, 64, csum_iters * 8);
    let line_hw = checksum_throughput(crc32c, 64, csum_iters * 8);
    let page_by = checksum_throughput(crc32c_bytewise, 4096, csum_iters);
    let page_s8 = checksum_throughput(crc32c_sw, 4096, csum_iters);
    let page_hw = checksum_throughput(crc32c, 4096, csum_iters);
    let speedup_line = line_s8 / line_by;
    let speedup_page = page_s8 / page_by;
    eprintln!("#   64 B line: bytewise {line_by:.0}, slice-by-8 {line_s8:.0} ({speedup_line:.2}x), dispatched {line_hw:.0} MiB/s");
    eprintln!("#   4 KB page: bytewise {page_by:.0}, slice-by-8 {page_s8:.0} ({speedup_page:.2}x), dispatched {page_hw:.0} MiB/s");

    eprintln!("# engine microbench ({engine_ops} raw DAX ops under Tvarak, best of {engine_runs})");
    let (sim_cycles, engine_wall) = engine_microbench(engine_ops, engine_runs);
    let engine_rate = sim_cycles as f64 / engine_wall.max(1e-9);
    eprintln!("#   {sim_cycles} simulated cycles in {engine_wall:.2}s = {:.2} Mcyc/s", engine_rate / 1e6);

    eprintln!("# hot-path microbenches ({hot_iters} iters, best of 3)");
    let (hot_lookup, hot_insert, hot_read, hot_write) = hotpath_microbench(hot_iters);
    eprintln!("#   cache: tag-scan miss {hot_lookup:.1}, insert-evict {hot_insert:.1} Mops/s");
    eprintln!("#   page store: read_line {hot_read:.1}, write_line {hot_write:.1} Mops/s");

    // Intra-run scaling: a 12-instance fio cell on the full Table III
    // machine at 1/2/4/8 requested engine threads. `sim_cycles` must be
    // bit-identical at every width (the bound-weave hard requirement);
    // wall time and per-shard weave occupancy are the tracked telemetry.
    // The sharded engine runs bound on the caller plus one replay worker
    // per weave shard (auto: min(LLC banks, host cores, 4)), so the curve
    // only shows real speedup on a multi-core host; on a 1-core box it
    // documents the transport overhead.
    let (scaling_ops, scaling_runs) = if quick { (2_048, 2) } else { (16_384, 3) };
    let mut scaling_scale = Scale::quick();
    scaling_scale.fio_threads = 12;
    scaling_scale.fio_region_bytes = 512 * 1024;
    scaling_scale.fio_ops_per_thread = scaling_ops;
    eprintln!("# engine scaling (12-instance fio, {scaling_ops} ops/inst, best of {scaling_runs})");
    let mut scaling: Vec<(usize, f64, Vec<f64>)> = Vec::new();
    let mut scaling_cycles = 0u64;
    for threads in [1usize, 2, 4, 8] {
        let (cyc, wall, occ) = scaling_point(&scaling_scale, threads, scaling_runs);
        if threads == 1 {
            scaling_cycles = cyc;
        } else {
            assert_eq!(
                cyc, scaling_cycles,
                "bound-weave sim_cycles diverged from sequential at {threads} threads"
            );
        }
        let occ_str = if occ.is_empty() {
            "-".to_string()
        } else {
            occ.iter()
                .map(|o| format!("{o:.2}"))
                .collect::<Vec<_>>()
                .join("/")
        };
        eprintln!("#   threads {threads}: {wall:.2}s wall, shard occupancy {occ_str}");
        scaling.push((threads, wall, occ));
    }
    let scaling_base = scaling[0].1;

    let trace_records: u64 = if quick { 200_000 } else { 2_000_000 };
    eprintln!("# trace codec microbench ({trace_records} mixed records, best of 5)");
    let (trace_bytes, trace_enc, trace_dec) = trace_microbench(trace_records);
    let bytes_per_record = trace_bytes as f64 / trace_records as f64;
    eprintln!(
        "#   {trace_bytes} encoded bytes ({bytes_per_record:.2} B/record vs 12 legacy): encode {trace_enc:.0}, decode {trace_dec:.0} MiB/s"
    );

    eprintln!("# cell grid (fio 4 patterns x Baseline/Tvarak, quick scale, --jobs {jobs})");
    let scale = Scale::quick();
    let mut cells: Vec<Cell<Outcome>> = Vec::new();
    for pattern in Pattern::all() {
        for design in [Design::Baseline, Design::Tvarak] {
            let s = scale.clone();
            cells.push(Cell::new(
                format!("fio {} {design}", pattern.label()),
                move || run_fio(design, pattern, &s).expect("workload failed"),
            ));
        }
    }
    let grid_start = Instant::now();
    let results = runner::run_cells(cells, jobs);
    let grid_wall = grid_start.elapsed().as_secs_f64();
    runner::eprint_rates(&results, |out| out.stats.runtime_cycles());
    let cells_per_sec = results.len() as f64 / grid_wall.max(1e-9);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": 6,");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"hw_crc32c\": {hw},");
    let _ = writeln!(json, "  \"hw_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"checksum\": {{");
    let _ = writeln!(json, "    \"line_bytewise_mib_s\": {},", json_f(line_by));
    let _ = writeln!(json, "    \"line_slice8_mib_s\": {},", json_f(line_s8));
    let _ = writeln!(json, "    \"line_dispatched_mib_s\": {},", json_f(line_hw));
    let _ = writeln!(json, "    \"page_bytewise_mib_s\": {},", json_f(page_by));
    let _ = writeln!(json, "    \"page_slice8_mib_s\": {},", json_f(page_s8));
    let _ = writeln!(json, "    \"page_dispatched_mib_s\": {},", json_f(page_hw));
    let _ = writeln!(json, "    \"line_speedup\": {},", json_f(speedup_line));
    let _ = writeln!(json, "    \"page_speedup\": {}", json_f(speedup_page));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"engine\": {{");
    let _ = writeln!(json, "    \"sim_cycles\": {sim_cycles},");
    let _ = writeln!(json, "    \"runs\": {engine_runs},");
    let _ = writeln!(json, "    \"wall_s\": {},", json_f(engine_wall));
    let _ = writeln!(json, "    \"sim_cycles_per_sec\": {}", json_f(engine_rate));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"engine_scaling\": {{");
    let _ = writeln!(json, "    \"fio_instances\": {},", scaling_scale.fio_threads);
    let _ = writeln!(json, "    \"ops_per_instance\": {scaling_ops},");
    let _ = writeln!(json, "    \"sim_cycles\": {scaling_cycles},");
    let _ = writeln!(json, "    \"points\": [");
    for (i, (threads, wall, occ)) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        let occ_json = format!(
            "[{}]",
            occ.iter().map(|&o| json_f(o)).collect::<Vec<_>>().join(", ")
        );
        let _ = writeln!(
            json,
            "      {{\"threads\": {threads}, \"wall_s\": {}, \"speedup\": {}, \"shard_occupancy\": {occ_json}}}{comma}",
            json_f(*wall),
            json_f(scaling_base / wall.max(1e-9)),
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"trace\": {{");
    let _ = writeln!(json, "    \"records\": {trace_records},");
    let _ = writeln!(json, "    \"encoded_bytes\": {trace_bytes},");
    let _ = writeln!(json, "    \"bytes_per_record\": {},", json_f(bytes_per_record));
    let _ = writeln!(
        json,
        "    \"chunk_bytes\": {},",
        memsim::trace::CHUNK_PAYLOAD_MAX
    );
    let _ = writeln!(json, "    \"trace_encode_mib_s\": {},", json_f(trace_enc));
    let _ = writeln!(json, "    \"trace_decode_mib_s\": {}", json_f(trace_dec));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"hotpath\": {{");
    let _ = writeln!(json, "    \"cache_lookup_miss_mops\": {},", json_f(hot_lookup));
    let _ = writeln!(json, "    \"cache_insert_evict_mops\": {},", json_f(hot_insert));
    let _ = writeln!(json, "    \"store_read_line_mops\": {},", json_f(hot_read));
    let _ = writeln!(json, "    \"store_write_line_mops\": {}", json_f(hot_write));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, r) in results.iter().enumerate() {
        let cyc = r.value.stats.runtime_cycles();
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"wall_s\": {}, \"sim_cycles\": {cyc}, \"sim_cycles_per_sec\": {}}}{comma}",
            r.label,
            json_f(r.wall.as_secs_f64()),
            json_f(r.sim_cycles_per_sec(cyc))
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"cell_grid\": {{");
    let _ = writeln!(json, "    \"cells\": {},", results.len());
    let _ = writeln!(json, "    \"total_wall_s\": {},", json_f(grid_wall));
    let _ = writeln!(json, "    \"cells_per_sec\": {}", json_f(cells_per_sec));
    let _ = writeln!(json, "  }},");
    // Host-dependent gauge (never CI-gated): peak RSS of this whole run.
    let _ = writeln!(
        json,
        "  \"rss_peak_kb\": {}",
        runner::peak_rss_kb()
            .map(|kb| kb.to_string())
            .unwrap_or_else(|| "null".to_string())
    );
    json.push_str("}\n");
    std::fs::write("BENCH_perf.json", &json).expect("write BENCH_perf.json");
    println!("{json}");
    eprintln!("[saved BENCH_perf.json]");
}
