//! Tracked performance baseline for the simulator itself.
//!
//! Times three things and writes `BENCH_perf.json` in the working
//! directory so the trajectory is tracked from PR to PR:
//!
//! 1. **Checksum microbench** — slice-by-8 CRC32C vs. the byte-wise
//!    reference, in MiB/s over cache-line and page inputs (the hot
//!    verification path; the acceptance bar is ≥ 2× for slice-by-8).
//! 2. **Engine microbench** — a raw DAX read/write sweep on a small
//!    machine under the full TVARAK design, reported as simulated cycles
//!    per wall-clock second.
//! 3. **Cell grid** — a fixed small fio grid (4 patterns × Baseline/Tvarak
//!    at quick scale) through `bench::runner`, reporting per-cell wall
//!    time, per-cell simulated throughput, and aggregate cells/sec.
//!
//! `--quick` shrinks the iteration counts for the CI smoke (the JSON shape
//! is identical); `--jobs N` / `MEMSIM_JOBS` control the cell-grid pool.

use apps::driver::{Design, Machine};
use apps::fio::Pattern;
use bench::runner::{self, Cell};
use bench::workloads::{run_fio, Outcome, Scale};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use tvarak::checksum::{crc32c, crc32c_bytewise};

/// MiB/s of `f` over `iters` passes of a `len`-byte buffer.
fn checksum_throughput(f: fn(&[u8]) -> u32, len: usize, iters: u64) -> f64 {
    let buf: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
    // Warm up tables and cache.
    let mut sink = f(&buf);
    let start = Instant::now();
    for _ in 0..iters {
        sink ^= f(black_box(&buf));
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    black_box(sink);
    (len as u64 * iters) as f64 / (1024.0 * 1024.0) / secs
}

/// Simulated cycles and wall seconds for a raw DAX read/write sweep.
fn engine_microbench(ops: u64) -> (u64, f64) {
    let mut m = Machine::builder()
        .small()
        .design(Design::Tvarak)
        .data_pages(256)
        .build();
    let file = m
        .create_dax_file("perf", 64 * 1024)
        .expect("pool fits perf file");
    let lines = file.len() / 64;
    let start = Instant::now();
    let mut buf = [0u8; 64];
    for op in 0..ops {
        let l = (op * 0x9e37) % lines;
        if op % 4 == 0 {
            buf[0] = op as u8;
            file.write(&mut m.sys, 0, l * 64, &buf).expect("write");
        } else {
            file.read(&mut m.sys, 0, l * 64, &mut buf).expect("read");
        }
        if op % 1024 == 1023 {
            m.flush();
        }
    }
    m.flush();
    (m.stats().runtime_cycles(), start.elapsed().as_secs_f64())
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = runner::jobs();
    let (csum_iters, engine_ops) = if quick { (2_000, 20_000) } else { (40_000, 200_000) };

    eprintln!("# checksum microbench ({csum_iters} iters per input size)");
    let line_by = checksum_throughput(crc32c_bytewise, 64, csum_iters * 8);
    let line_s8 = checksum_throughput(crc32c, 64, csum_iters * 8);
    let page_by = checksum_throughput(crc32c_bytewise, 4096, csum_iters);
    let page_s8 = checksum_throughput(crc32c, 4096, csum_iters);
    let speedup_line = line_s8 / line_by;
    let speedup_page = page_s8 / page_by;
    eprintln!("#   64 B line: bytewise {line_by:.0} MiB/s, slice-by-8 {line_s8:.0} MiB/s ({speedup_line:.2}x)");
    eprintln!("#   4 KB page: bytewise {page_by:.0} MiB/s, slice-by-8 {page_s8:.0} MiB/s ({speedup_page:.2}x)");

    eprintln!("# engine microbench ({engine_ops} raw DAX ops under Tvarak)");
    let (sim_cycles, engine_wall) = engine_microbench(engine_ops);
    let engine_rate = sim_cycles as f64 / engine_wall.max(1e-9);
    eprintln!("#   {sim_cycles} simulated cycles in {engine_wall:.2}s = {:.2} Mcyc/s", engine_rate / 1e6);

    eprintln!("# cell grid (fio 4 patterns x Baseline/Tvarak, quick scale, --jobs {jobs})");
    let scale = Scale::quick();
    let mut cells: Vec<Cell<Outcome>> = Vec::new();
    for pattern in Pattern::all() {
        for design in [Design::Baseline, Design::Tvarak] {
            let s = scale.clone();
            cells.push(Cell::new(
                format!("fio {} {design}", pattern.label()),
                move || run_fio(design, pattern, &s).expect("workload failed"),
            ));
        }
    }
    let grid_start = Instant::now();
    let results = runner::run_cells(cells, jobs);
    let grid_wall = grid_start.elapsed().as_secs_f64();
    runner::eprint_rates(&results, |out| out.stats.runtime_cycles());
    let cells_per_sec = results.len() as f64 / grid_wall.max(1e-9);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": 1,");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"checksum\": {{");
    let _ = writeln!(json, "    \"line_bytewise_mib_s\": {},", json_f(line_by));
    let _ = writeln!(json, "    \"line_slice8_mib_s\": {},", json_f(line_s8));
    let _ = writeln!(json, "    \"page_bytewise_mib_s\": {},", json_f(page_by));
    let _ = writeln!(json, "    \"page_slice8_mib_s\": {},", json_f(page_s8));
    let _ = writeln!(json, "    \"line_speedup\": {},", json_f(speedup_line));
    let _ = writeln!(json, "    \"page_speedup\": {}", json_f(speedup_page));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"engine\": {{");
    let _ = writeln!(json, "    \"sim_cycles\": {sim_cycles},");
    let _ = writeln!(json, "    \"wall_s\": {},", json_f(engine_wall));
    let _ = writeln!(json, "    \"sim_cycles_per_sec\": {}", json_f(engine_rate));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, r) in results.iter().enumerate() {
        let cyc = r.value.stats.runtime_cycles();
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"wall_s\": {}, \"sim_cycles\": {cyc}, \"sim_cycles_per_sec\": {}}}{comma}",
            r.label,
            json_f(r.wall.as_secs_f64()),
            json_f(r.sim_cycles_per_sec(cyc))
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"cell_grid\": {{");
    let _ = writeln!(json, "    \"cells\": {},", results.len());
    let _ = writeln!(json, "    \"total_wall_s\": {},", json_f(grid_wall));
    let _ = writeln!(json, "    \"cells_per_sec\": {}", json_f(cells_per_sec));
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write("BENCH_perf.json", &json).expect("write BENCH_perf.json");
    println!("{json}");
    eprintln!("[saved BENCH_perf.json]");
}
