//! Ad-hoc calibration probe: run one workload under selected designs and
//! print the comparison row. Usage:
//!
//! ```sh
//! cargo run --release -p bench --bin probe -- stream-copy baseline tvarak
//! cargo run --release -p bench --bin probe -- redis-set all
//! ```

use apps::driver::Design;
use apps::fio::Pattern;
use apps::stream::Kernel;
use bench::workloads::{
    run_fio, run_kv, run_nstore, run_redis, run_stream, KvKind, KvWorkload, NstoreWorkload,
    RedisWorkload, Scale,
};
use bench::{Report, Row};

fn run(workload: &str, design: Design, s: &Scale) -> bench::Outcome {
    match workload {
        "redis-set" => run_redis(design, RedisWorkload::SetOnly, s),
        "redis-get" => run_redis(design, RedisWorkload::GetOnly, s),
        "ctree-insert" => run_kv(design, KvKind::CTree, KvWorkload::InsertOnly, s),
        "ctree-bal" => run_kv(design, KvKind::CTree, KvWorkload::Balanced, s),
        "btree-insert" => run_kv(design, KvKind::BTree, KvWorkload::InsertOnly, s),
        "rbtree-insert" => run_kv(design, KvKind::RbTree, KvWorkload::InsertOnly, s),
        "nstore-bal" => run_nstore(design, NstoreWorkload::Balanced, s),
        "nstore-up" => run_nstore(design, NstoreWorkload::UpdateHeavy, s),
        "fio-seq-read" => run_fio(design, Pattern::SeqRead, s),
        "fio-seq-write" => run_fio(design, Pattern::SeqWrite, s),
        "fio-rand-read" => run_fio(design, Pattern::RandRead, s),
        "fio-rand-write" => run_fio(design, Pattern::RandWrite, s),
        "stream-copy" => run_stream(design, Kernel::Copy, s),
        "stream-triad" => run_stream(design, Kernel::Triad, s),
        other => panic!("unknown workload {other}"),
    }
    .expect("workload failed")
}

fn main() {
    let scale = Scale::from_env();
    let mut args = std::env::args().skip(1);
    let workload = args.next().expect("usage: probe <workload> <design...>");
    let designs: Vec<Design> = args
        .flat_map(|d| match d.as_str() {
            "all" => Design::fig8().to_vec(),
            other => vec![other.parse().unwrap_or_else(|e| panic!("{e}"))],
        })
        .collect();
    let mut rep = Report::new(&format!("probe — {workload}"));
    for design in designs {
        eprintln!("probe {workload} under {design} ...");
        let out = run(&workload, design, &scale);
        let min_clock = out.stats.core_cycles.iter().min().unwrap();
        eprintln!(
            "  queue-wait: {} cycles, runtime {}, clock-spread {}, verified {}",
            out.stats.counters.demand_queue_cycles,
            out.stats.runtime_cycles(),
            out.stats.runtime_cycles() - min_clock,
            out.stats.counters.reads_verified,
        );
        rep.push(Row::new(&workload, design, &out.stats, &out.cfg));
    }
    println!("{}", rep.to_table());
}
