//! Degraded-mode campaign: drive every design × fio/kv under sustained
//! foreground load through whole-device fault storms and measure what
//! broken-and-serving actually costs.
//!
//! Each cell walks the device-replacement lifecycle through four phases —
//! **healthy → degraded** (a DIMM fails, reads reconstruct from firmware
//! shadow parity) **→ rebuilding** (a hot spare attaches and the online
//! resilver races foreground traffic under the maintenance QoS token
//! bucket) **→ recovered** — and reports per-phase throughput, degraded
//! read amplification, and rebuild/QoS counters. Scenarios:
//!
//! - `rebuild`: single fault at RAID-P; the baseline lifecycle.
//! - `double-pq`: RAID-P+Q with a *second* device failing mid-resilver —
//!   two-erasure reconstruction carries the rebuild through.
//! - `double-p`: the same storm at P-only, where the second fault makes
//!   stripes unreconstructible — pages are abandoned, poisoned, and
//!   quarantined (fail closed), never fabricated.
//!
//! Invariants, enforced per cell and fatal to the campaign:
//!
//! 1. The resilver completes under load (within a generous op cap) in every
//!    scenario, for every design.
//! 2. No silent wrong data: in the clean-recovery scenarios (`rebuild`,
//!    `double-pq`) *no* design may return a byte that differs from the
//!    acknowledged write stream; under `double-p`, designs with inline
//!    cache-line verification must still never be silently wrong (poisoned
//!    pages fail closed), while page-granular and Baseline exposure is
//!    measured and reported.
//! 3. Oracle bit-identity: after the final resilver and flush, the NVM
//!    media `content_hash` equals a never-faulted oracle run of the same
//!    design, seed, and op count (`rebuild`, `double-pq`; `double-p`
//!    declares data loss, so its hash is reported, not asserted).
//!
//! `DEGRADED_FILTER=substring` runs matching cells only;
//! `DEGRADED_FAULTS='lost-write@128,misdir-write@256->512'` (parsed via
//! `pmemfs::fault::Fault`'s `FromStr`) arms an extra firmware-fault mix
//! against the fio file at the start of the degraded phase. Emits
//! `results/degraded_campaign.csv` (byte-identical at any `--jobs`) and
//! exits non-zero on any invariant violation.

use apps::btree::BTree;
use apps::driver::{AppError, Design, Machine};
use apps::kv::PersistentKv;
use apps::rng::Rng;
use bench::capture::CampaignTrace;
use bench::runner::{self, Cell};
use memsim::addr::PAGE;
use memsim::RaidLevel;
use pmemfs::fault::{self, Fault};
use pmemfs::fs::FileHandle;
use pmemfs::rebuild::PoolState;
use serve::Hist;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tvarak::controller::TvarakConfig;
use tvarak::qos::QosConfig;

thread_local! {
    /// Most recent panic message on this worker thread (fabricated bytes can
    /// legitimately send an index structure chasing garbage under Baseline
    /// in the data-loss scenario; the quiet process-wide hook records it
    /// here instead of spamming stderr).
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn install_quiet_panic_hook() {
    std::panic::set_hook(Box::new(|info| {
        LAST_PANIC.with(|p| *p.borrow_mut() = Some(info.to_string()));
    }));
}

fn take_last_panic() -> Option<String> {
    LAST_PANIC.with(|p| p.borrow_mut().take())
}

/// Ops per steady phase (healthy / degraded / recovered), from `TVARAK_SCALE`.
fn phase_ops() -> u64 {
    match std::env::var("TVARAK_SCALE").as_deref() {
        Ok("quick") => 60,
        Ok("reduced") => 150,
        _ => 300,
    }
}

const FLUSH_EVERY: u64 = 16;
const MAX_RETRIES: u32 = 3;
const SCRUB_PAGES: u64 = 1;
const SCRUB_INTERVAL: u64 = 4;
/// First device to fail; the mid-rebuild second fault takes the next one.
const FAIL_BANK: usize = 1;
const SECOND_BANK: usize = 2;

/// Maintenance pacing: one resilvered page (or scrub step) per two
/// foreground ops at steady state — fast enough that the rebuilding phase
/// stays a bounded fraction of a cell, slow enough that it visibly
/// interleaves with (and is paced by) foreground traffic.
fn qos() -> QosConfig {
    QosConfig {
        refill_per_op: 1,
        burst: 8,
        rebuild_page_cost: 2,
        scrub_step_cost: 2,
        starvation_ops: 64,
        scrub_every_grants: 4,
    }
}

fn designs() -> [Design; 5] {
    [
        Design::Baseline,
        Design::Tvarak,
        Design::TvarakAblated(TvarakConfig::naive()),
        Design::TxbObject,
        Design::TxbPage,
    ]
}

/// Inline cache-line-granular verification — the designs that promise "no
/// silent wrong data" even across declared data loss (poison fails closed
/// at first consumption).
fn inline_cl_verified(design: Design) -> bool {
    design.has_controller()
        && design.checksum_granularity() == Some(tvarak::scrub::ScrubGranularity::CacheLine)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Single device failure, P parity, clean resilver.
    Rebuild,
    /// Second device fails mid-resilver; P+Q carries the rebuild through.
    DoublePq,
    /// Second device fails mid-resilver at P-only: declared data loss,
    /// abandoned pages quarantined, serving fails closed.
    DoubleP,
}

impl Scenario {
    fn all() -> [Scenario; 3] {
        [Scenario::Rebuild, Scenario::DoublePq, Scenario::DoubleP]
    }

    fn label(self) -> &'static str {
        match self {
            Scenario::Rebuild => "rebuild",
            Scenario::DoublePq => "double-pq",
            Scenario::DoubleP => "double-p",
        }
    }

    fn level(self) -> RaidLevel {
        match self {
            Scenario::DoublePq => RaidLevel::PQ,
            _ => RaidLevel::P,
        }
    }

    fn second_fault(self) -> bool {
        !matches!(self, Scenario::Rebuild)
    }

    /// Whether the post-resilver media must bit-match the never-faulted
    /// oracle. `double-p` declares data loss (abandoned pages are poisoned
    /// by design), so only its *behaviour* is asserted, not its bytes.
    fn oracle_strict(self) -> bool {
        !matches!(self, Scenario::DoubleP)
    }
}

/// Per-phase measurement: foreground ops, simulated cycles on the serving
/// core, degraded reconstruct-on-read fills charged in the window, and the
/// per-op latency distribution (each op's serving-core cycle delta,
/// including any maintenance work piggybacked on it — QoS pacing spikes are
/// exactly what the tail shows).
#[derive(Debug, Clone, Default)]
struct Phase {
    ops: u64,
    cycles: u64,
    degraded_fills: u64,
    lat: Hist,
}

impl Phase {
    /// Throughput in ops per kilocycle (the per-phase cost headline).
    fn ops_per_kcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 * 1000.0 / self.cycles as f64
        }
    }
}

#[derive(Debug, Default)]
struct Outcome {
    phases: [Phase; 4],
    total_ops: u64,
    wrong_data: u64,
    fail_closed: u64,
    crashed: bool,
    detections: u64,
    recoveries: u64,
    quarantines: u64,
    pages_resilvered: u64,
    pages_abandoned: u64,
    lines_reconstructed: u64,
    write_intent_lines: u64,
    dropped_writes: u64,
    reconstructed_reads: u64,
    backpressure_events: u64,
    rebuilds_completed: u64,
    faults_armed: u64,
    content_hash: u64,
    oracle_hash: u64,
    violations: Vec<String>,
}

/// One foreground workload: a deterministic op stream over a machine,
/// replayable op-for-op for the oracle run.
trait Workload {
    fn file(&self) -> &FileHandle;
    /// Run op `op`; account wrong data / fail-closed into `out`. Returns
    /// `false` if the application crashed (loud failure; the cell aborts).
    fn step(&mut self, m: &mut Machine, op: u64, out: &mut Outcome) -> bool;
    /// Surrender the streaming trace capture, if this workload records
    /// one, so the cell can close and verify it.
    fn take_capture(&mut self) -> Option<CampaignTrace> {
        None
    }
}

/// fio-style raw file I/O: 64 B reads/writes at seeded random line offsets
/// with a per-line shadow of the acknowledged value. When a capture is
/// attached, every op streams to a chunked `TVT2` file as it is issued.
struct FioWorkload {
    file: FileHandle,
    txm: Option<pmemfs::tx::TxManager>,
    shadow: Vec<Option<u64>>,
    rng: Rng,
    nlines: u64,
    cap: Option<CampaignTrace>,
}

fn fio_pattern(l: u64, v: u64) -> [u8; 64] {
    let mut p = [0u8; 64];
    p[..8].copy_from_slice(&l.to_le_bytes());
    p[8..16].copy_from_slice(&v.to_le_bytes());
    p[16] = (l ^ v) as u8;
    p
}

impl FioWorkload {
    fn new(m: &mut Machine, seed: u64, cap: Option<CampaignTrace>) -> Self {
        let txm = match m.design().sw_scheme() {
            pmemfs::tx::SwScheme::None => None,
            _ => Some(m.tx_manager(64 * 1024).expect("pool fits tx log")),
        };
        let file = m.create_dax_file("fio", 16 * PAGE as u64).expect("pool fits");
        let nlines = file.pages() * memsim::LINES_PER_PAGE as u64;
        for l in 0..nlines {
            m.sys
                .memory_mut()
                .poke_line(file.addr(l * 64).line(), &fio_pattern(l, 0));
        }
        m.reinit_redundancy(&file);
        FioWorkload {
            file,
            txm,
            shadow: vec![Some(0); nlines as usize],
            rng: Rng::new(0xf10_0000 ^ seed),
            nlines,
            cap,
        }
    }
}

impl Workload for FioWorkload {
    fn file(&self) -> &FileHandle {
        &self.file
    }

    fn step(&mut self, m: &mut Machine, op: u64, out: &mut Outcome) -> bool {
        let l = self.rng.below(self.nlines);
        let off = l * 64;
        let file = self.file;
        let is_write = self.rng.below(2) == 0;
        if let Some(cap) = self.cap.as_mut() {
            cap.record(is_write, file.addr(off), 64);
        }
        if is_write {
            let data = fio_pattern(l, op + 1);
            let result = match self.txm.as_mut() {
                Some(txm) => match m.check_poison(&file, off, 64) {
                    Ok(()) => {
                        let mut tx = txm.begin(&mut m.sys, 0).expect("tx");
                        tx.write(&mut m.sys, &file, off, &data).expect("tx write");
                        tx.commit(&mut m.sys).expect("commit");
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
                None => m.write_file(&file, 0, off, &data),
            };
            match result {
                Ok(()) => self.shadow[l as usize] = Some(op + 1),
                Err(AppError::Poisoned(_)) => {
                    out.fail_closed += 1;
                    self.shadow[l as usize] = None;
                }
                Err(e) => panic!("unexpected app error: {e}"),
            }
        } else {
            let mut buf = [0u8; 64];
            match m.read_file(&file, 0, off, &mut buf) {
                Ok(()) => {
                    if let Some(v) = self.shadow[l as usize] {
                        if buf != fio_pattern(l, v) {
                            out.wrong_data += 1;
                        }
                    }
                }
                Err(AppError::Poisoned(_)) => out.fail_closed += 1,
                Err(e) => panic!("unexpected app error: {e}"),
            }
        }
        true
    }

    fn take_capture(&mut self) -> Option<CampaignTrace> {
        self.cap.take()
    }
}

/// Key-value load: a persistent B-tree under a 60:40 overwrite:lookup mix
/// with a shadow map; keys whose op failed closed are tainted (their
/// durable value is legitimately unknown).
struct KvWorkload {
    kv: Box<BTree>,
    txm: pmemfs::tx::TxManager,
    file: FileHandle,
    shadow: HashMap<u64, u64>,
    tainted: HashMap<u64, ()>,
    rng: Rng,
    degraded: bool,
}

const KV_KEYSPACE: u64 = 240;

impl KvWorkload {
    fn new(m: &mut Machine, seed: u64) -> Self {
        let mut txm = m.tx_manager(64 * 1024).expect("pool fits tx log");
        let mut kv = Box::new(BTree::create(m, 0, 32 * 1024).expect("pool fits"));
        let mut shadow = HashMap::new();
        for k in 0..160u64 {
            kv.insert(m, &mut txm, k, k ^ 0xa5a5).expect("preload");
            shadow.insert(k, k ^ 0xa5a5);
        }
        let file = *kv.file();
        KvWorkload {
            kv,
            txm,
            file,
            shadow,
            tainted: HashMap::new(),
            rng: Rng::new(0xdead_0000 ^ seed),
            degraded: false,
        }
    }
}

impl Workload for KvWorkload {
    fn file(&self) -> &FileHandle {
        &self.file
    }

    fn step(&mut self, m: &mut Machine, op: u64, out: &mut Outcome) -> bool {
        let key = self.rng.below(KV_KEYSPACE);
        let write = self.rng.below(10) < 6;
        let d_before = m.orchestrator().map_or(0, |o| o.detections());
        let kv = &mut self.kv;
        let txm = &mut self.txm;
        let file = self.file;
        let shadow = &mut self.shadow;
        let tainted = &mut self.tainted;
        let degraded = self.degraded;
        let mut wrong = 0u64;
        let mut closed = 0u64;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if write {
                match m.with_recovery(|m| kv.insert(m, txm, key, op)) {
                    Ok(()) => {
                        shadow.insert(key, op);
                        tainted.remove(&key);
                        false
                    }
                    Err(AppError::Poisoned(_)) => {
                        closed += 1;
                        tainted.insert(key, ());
                        true
                    }
                    Err(e) => panic!("unexpected app error: {e}"),
                }
            } else if !m.design().has_controller()
                && m.check_poison(&file, 0, (file.pages() * PAGE as u64) as usize)
                    .is_err()
            {
                closed += 1;
                true
            } else {
                match m.with_recovery(|m| kv.get(m, key)) {
                    Ok(got) => {
                        if let (Some(v), Some(&want)) = (got, shadow.get(&key)) {
                            if v != want && !tainted.contains_key(&key) && !degraded {
                                wrong += 1;
                            }
                        }
                        false
                    }
                    Err(AppError::Poisoned(_)) => {
                        closed += 1;
                        true
                    }
                    Err(e) => panic!("unexpected app error: {e}"),
                }
            }
        }));
        out.wrong_data += wrong;
        out.fail_closed += closed;
        match outcome {
            Ok(poisoned_now) => {
                self.degraded |= poisoned_now;
                let d_after = m.orchestrator().map_or(0, |o| o.detections());
                if write && d_after > d_before {
                    // A mutation was interrupted and retried; the index may
                    // be structurally disturbed from here on.
                    self.degraded = true;
                    self.tainted.insert(key, ());
                }
                true
            }
            Err(_) => {
                out.crashed = true;
                let _ = take_last_panic();
                false
            }
        }
    }
}

fn seed_for(app: &str, scenario: Scenario) -> u64 {
    // Design-independent: every design faces the identical op stream and
    // fault schedule for a given (app, scenario) cell.
    let mut s: u64 = 0x00de_64ad_u64;
    for b in app.bytes().chain(scenario.label().bytes()) {
        s = s.wrapping_mul(31).wrapping_add(b as u64);
    }
    s
}

/// Extra firmware-fault mix from `DEGRADED_FAULTS` (comma/space-separated
/// `Fault` specs), armed against the fio file when the degraded phase
/// opens. Exits with usage on a malformed spec.
fn env_faults() -> Vec<Fault> {
    let Ok(spec) = std::env::var("DEGRADED_FAULTS") else {
        return Vec::new();
    };
    spec.split([',', ' '])
        .filter(|s| !s.trim().is_empty())
        .map(|s| match s.trim().parse::<Fault>() {
            Ok(f) => f,
            Err(e) => {
                eprintln!("DEGRADED_FAULTS: {e}");
                std::process::exit(2);
            }
        })
        .collect()
}

fn build_machine(design: Design) -> Machine {
    Machine::builder()
        .small()
        .design(design)
        .data_pages(256)
        .build()
}

fn enable_pipeline(m: &mut Machine, file: &FileHandle) {
    if m.design() != Design::Baseline {
        m.enable_recovery(MAX_RETRIES).expect("poison store fits");
        m.enable_scrub_daemon(file, SCRUB_PAGES, SCRUB_INTERVAL);
    }
}

/// Build the app's workload. Only fio has a raw address stream worth
/// capturing; `cap` is ignored for the KV apps (their ops are index
/// operations, not addressed I/O).
fn make_workload(
    app: &str,
    m: &mut Machine,
    seed: u64,
    cap: Option<CampaignTrace>,
) -> Box<dyn Workload> {
    match app {
        "fio" => Box::new(FioWorkload::new(m, seed, cap)),
        _ => Box::new(KvWorkload::new(m, seed)),
    }
}

/// Drive `n` foreground ops (or until a predicate or crash stops the
/// phase), ticking maintenance after every op and flushing on the global
/// cadence. Returns the ops actually run.
fn drive<F: FnMut(&Machine, u64) -> bool>(
    m: &mut Machine,
    w: &mut dyn Workload,
    out: &mut Outcome,
    op: &mut u64,
    limit: u64,
    lat: &mut Hist,
    mut stop: F,
) -> u64 {
    let mut ran = 0;
    while ran < limit && !stop(m, ran) {
        let start = m.sys.clock(0);
        if !w.step(m, *op, out) {
            break; // crashed (already recorded)
        }
        let _ = m.tick_maintenance(0);
        lat.record(m.sys.clock(0) - start);
        *op += 1;
        ran += 1;
        if (*op).is_multiple_of(FLUSH_EVERY) {
            m.flush();
        }
    }
    ran
}

/// Run one faulted cell end to end; `ctx` labels violations.
fn run_faulted(
    app: &str,
    design: Design,
    scenario: Scenario,
    ctx: &str,
    faults: &[Fault],
) -> Outcome {
    let n = phase_ops();
    let seed = seed_for(app, scenario);
    let mut out = Outcome::default();
    let mut m = build_machine(design);
    let cap = (app == "fio")
        .then(|| CampaignTrace::create(&format!("degraded {ctx}")).expect("open trace capture"));
    let mut w = make_workload(app, &mut m, seed, cap);
    let file = *w.file();
    m.flush();
    enable_pipeline(&mut m, &file);
    m.flush();
    m.enable_raid(scenario.level(), qos());

    let striped = m.sys.memory().striped_pages();
    let pages_per_bank = striped / m.sys.memory().nvm_dimms() as u64;
    // The second fault lands about halfway through the first resilver.
    let second_at = pages_per_bank * qos().rebuild_page_cost as u64 / 2;
    // Generous completion cap: a resilver needs ~cost ops per page; 16×
    // covers both banks, QoS debt, and scrub's minimum share many times
    // over. Exceeding it means the rebuild did not complete under load.
    let cap = 64 + 16 * striped * qos().rebuild_page_cost as u64;

    let mut op = 0u64;

    // Phase 0: healthy.
    let (c0, f0) = (m.sys.clock(0), m.stats().counters.degraded_fills);
    let mut lat = Hist::new();
    let ran = drive(&mut m, w.as_mut(), &mut out, &mut op, n, &mut lat, |_, _| false);
    out.phases[0] = Phase {
        ops: ran,
        cycles: m.sys.clock(0) - c0,
        degraded_fills: m.stats().counters.degraded_fills - f0,
        lat,
    };

    // Phase 1: degraded — the device dies, serving continues from parity.
    m.fail_device(FAIL_BANK);
    if app == "fio" {
        for f in faults {
            fault::inject(&mut m.sys, &file, *f);
            out.faults_armed += 1;
        }
    }
    let (c0, f0) = (m.sys.clock(0), m.stats().counters.degraded_fills);
    let mut lat = Hist::new();
    let ran = drive(&mut m, w.as_mut(), &mut out, &mut op, n, &mut lat, |_, _| false);
    out.phases[1] = Phase {
        ops: ran,
        cycles: m.sys.clock(0) - c0,
        degraded_fills: m.stats().counters.degraded_fills - f0,
        lat,
    };

    // Phase 2: rebuilding — hot spare attached, resilver races foreground
    // traffic; the storm scenarios fail a second device mid-resilver.
    m.attach_spare(FAIL_BANK);
    let (c0, f0) = (m.sys.clock(0), m.stats().counters.degraded_fills);
    let mut lat = Hist::new();
    let mut rebuilding_ops = 0u64;
    let mut second_fired = !scenario.second_fault();
    loop {
        if !second_fired && rebuilding_ops >= second_at {
            m.fail_device(SECOND_BANK);
            second_fired = true;
        }
        if m.rebuild_idle() {
            let next = m.replacement().and_then(|r| r.failed_banks().first().copied());
            match next {
                // Second spare only once the storm has fired; until then an
                // idle manager with no failed banks means we are done.
                Some(b) => m.attach_spare(b),
                None if second_fired => break,
                None => {}
            }
        }
        if out.crashed || rebuilding_ops >= cap {
            break;
        }
        let ran = drive(&mut m, w.as_mut(), &mut out, &mut op, 1, &mut lat, |_, _| false);
        if ran == 0 {
            break;
        }
        rebuilding_ops += ran;
    }
    out.phases[2] = Phase {
        ops: rebuilding_ops,
        cycles: m.sys.clock(0) - c0,
        degraded_fills: m.stats().counters.degraded_fills - f0,
        lat,
    };
    if !(m.rebuild_idle() && m.pool_state() == PoolState::Healthy) {
        out.violations.push(format!(
            "{ctx}: resilver did not complete under load ({rebuilding_ops} ops, cap {cap})"
        ));
    }

    // Phase 3: recovered.
    let (c0, f0) = (m.sys.clock(0), m.stats().counters.degraded_fills);
    let mut lat = Hist::new();
    let ran = drive(&mut m, w.as_mut(), &mut out, &mut op, n, &mut lat, |_, _| false);
    out.phases[3] = Phase {
        ops: ran,
        cycles: m.sys.clock(0) - c0,
        degraded_fills: m.stats().counters.degraded_fills - f0,
        lat,
    };

    m.flush();
    if let Some(cap) = w.take_capture() {
        match cap.finish() {
            // Every fio op — across all four phases — must round-trip.
            Ok(n) if n != op => out.violations.push(format!(
                "{ctx}: trace captured {n} records for {op} ops"
            )),
            Ok(_) => {}
            Err(e) => out.violations.push(format!("{ctx}: {e}")),
        }
    }
    out.total_ops = op;
    out.content_hash = m.sys.memory().content_hash();
    let rs = m.sys.memory().raid_stats();
    out.reconstructed_reads = rs.reconstructed_reads;
    out.dropped_writes = rs.dropped_writes;
    out.write_intent_lines = rs.write_intent_lines;
    if let Some(r) = m.replacement() {
        out.pages_resilvered = r.pages_resilvered();
        out.pages_abandoned = r.pages_abandoned();
        out.lines_reconstructed = r.lines_reconstructed();
        out.backpressure_events = r.backpressure_events();
        out.rebuilds_completed = r.rebuilds_completed();
    }
    if let Some(orch) = m.orchestrator() {
        out.detections = orch.detections();
        out.recoveries = orch.recoveries();
        out.quarantines = orch.quarantines();
    }
    out
}

/// Replay the identical op stream on a never-faulted machine (no firmware
/// RAID, no device failures) and return its final media hash.
fn run_oracle(app: &str, design: Design, scenario: Scenario, total_ops: u64) -> u64 {
    let seed = seed_for(app, scenario);
    let mut m = build_machine(design);
    // No capture: the oracle replays the same stream the faulted run
    // already recorded.
    let mut w = make_workload(app, &mut m, seed, None);
    let file = *w.file();
    m.flush();
    enable_pipeline(&mut m, &file);
    m.flush();
    let mut out = Outcome::default();
    let mut op = 0u64;
    let mut lat = Hist::new();
    let _ = drive(&mut m, w.as_mut(), &mut out, &mut op, total_ops, &mut lat, |_, _| false);
    m.flush();
    m.sys.memory().content_hash()
}

fn check_invariants(ctx: &str, design: Design, scenario: Scenario, out: &mut Outcome) {
    let strict = scenario.oracle_strict();
    if strict {
        // Clean recovery: nothing may diverge from the acknowledged write
        // stream for ANY design — there is no data loss to excuse.
        if out.wrong_data > 0 {
            out.violations.push(format!(
                "{ctx}: {} wrong-data reads in a clean-recovery scenario",
                out.wrong_data
            ));
        }
        if out.crashed {
            out.violations
                .push(format!("{ctx}: app crash in a clean-recovery scenario"));
        }
        if out.content_hash != out.oracle_hash {
            out.violations.push(format!(
                "{ctx}: post-resilver media diverges from never-faulted oracle \
                 ({:#018x} != {:#018x})",
                out.content_hash, out.oracle_hash
            ));
        }
        if out.pages_abandoned > 0 {
            out.violations.push(format!(
                "{ctx}: {} pages abandoned in a clean-recovery scenario",
                out.pages_abandoned
            ));
        }
    } else {
        // Declared data loss: inline-verified designs must still never be
        // silently wrong — poison fails closed at first consumption.
        if inline_cl_verified(design) && out.wrong_data > 0 {
            out.violations.push(format!(
                "{ctx}: {} silent wrong-data reads under a verifying design",
                out.wrong_data
            ));
        }
        // The P-only storm must actually declare the loss, not paper over
        // it: unreconstructible pages are abandoned and (when an
        // orchestrator exists) quarantined.
        if out.pages_abandoned == 0 {
            out.violations.push(format!(
                "{ctx}: mid-rebuild double fault at P-only abandoned nothing \
                 (expected fail-closed data loss)"
            ));
        } else if design != Design::Baseline && out.quarantines == 0 {
            out.violations.push(format!(
                "{ctx}: {} abandoned pages but no quarantines (poison not routed)",
                out.pages_abandoned
            ));
        }
    }
    let expected_rebuilds = if scenario.second_fault() { 2 } else { 1 };
    if out.rebuilds_completed != expected_rebuilds {
        out.violations.push(format!(
            "{ctx}: {} rebuilds completed, expected {expected_rebuilds}",
            out.rebuilds_completed
        ));
    }
}

fn main() {
    let n = phase_ops();
    let faults = env_faults();
    println!(
        "# Degraded-mode campaign — scenario × design × app, {n} ops/steady phase"
    );
    println!(
        "{:<4} {:<17} {:<10} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>5} {:>6} {:>5}",
        "app", "design", "scenario", "ops",
        "h_op/kc", "d_op/kc", "r_op/kc", "ok_op/kc", "h_p99", "r_p99",
        "resilv", "aband", "dfill", "quar", "closed", "hash"
    );
    if std::env::var("DEGRADED_LOUD").is_err() { install_quiet_panic_hook(); }
    let filter = std::env::var("DEGRADED_FILTER").unwrap_or_default();
    let mut cells: Vec<Cell<(&'static str, Design, Scenario, Outcome)>> = Vec::new();
    for app in ["fio", "kv"] {
        for design in designs() {
            for scenario in Scenario::all() {
                let ctx = format!(
                    "app={app} design={} scenario={}",
                    design.label(),
                    scenario.label()
                );
                if !filter.is_empty() && !ctx.contains(&filter) {
                    continue;
                }
                let faults = faults.clone();
                cells.push(Cell::new(ctx.clone(), move || {
                    let mut out = run_faulted(app, design, scenario, &ctx, &faults);
                    out.oracle_hash = if scenario.oracle_strict() && !out.crashed {
                        run_oracle(app, design, scenario, out.total_ops)
                    } else {
                        0
                    };
                    check_invariants(&ctx, design, scenario, &mut out);
                    (app, design, scenario, out)
                }));
            }
        }
    }
    if cells.is_empty() {
        eprintln!("DEGRADED_FILTER={filter:?} matched no cells — nothing was checked");
        std::process::exit(2);
    }
    let results = runner::run_cells(cells, runner::jobs());
    // Table and CSV are assembled from the in-input-order results after the
    // pool drains, so every --jobs setting emits the same bytes.
    let mut csv = String::from(
        "app,design,scenario,level,ops,\
         healthy_ops,healthy_cycles,degraded_ops,degraded_cycles,\
         rebuilding_ops,rebuilding_cycles,recovered_ops,recovered_cycles,\
         healthy_p50,healthy_p99,healthy_p999,\
         degraded_p50,degraded_p99,degraded_p999,\
         rebuilding_p50,rebuilding_p99,rebuilding_p999,\
         recovered_p50,recovered_p99,recovered_p999,\
         degraded_fills,reconstructed_reads,dropped_writes,write_intent_lines,\
         pages_resilvered,pages_abandoned,lines_reconstructed,backpressure_events,\
         rebuilds_completed,detections,recoveries,quarantines,wrong_data,\
         fail_closed,crashed,faults_armed,content_hash,oracle_hash,hash_match,\
         seed,repro\n",
    );
    let mut violations: Vec<String> = Vec::new();
    for r in &results {
        let (app, design, scenario, out) = &r.value;
        let hash_match = scenario.oracle_strict() && out.content_hash == out.oracle_hash;
        println!(
            "{:<4} {:<17} {:<10} {:>7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8} {:>8} {:>6} {:>6} {:>6} {:>5} {:>6} {:>5}",
            app,
            design.label(),
            scenario.label(),
            out.total_ops,
            out.phases[0].ops_per_kcycle(),
            out.phases[1].ops_per_kcycle(),
            out.phases[2].ops_per_kcycle(),
            out.phases[3].ops_per_kcycle(),
            out.phases[0].lat.p99(),
            out.phases[2].lat.p99(),
            out.pages_resilvered,
            out.pages_abandoned,
            out.phases[1].degraded_fills + out.phases[2].degraded_fills,
            out.quarantines,
            out.fail_closed,
            if scenario.oracle_strict() {
                if hash_match { "ok" } else { "FAIL" }
            } else {
                "-"
            }
        );
        let repro = format!(
            "DEGRADED_FILTER='app={} design={} scenario={}' ./target/release/degraded_campaign",
            app,
            design.label(),
            scenario.label()
        );
        let tails = out
            .phases
            .iter()
            .map(|p| format!("{},{},{}", p.lat.p50(), p.lat.p99(), p.lat.p999()))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:#018x},{:#018x},{},{:#018x},{}",
            app,
            design.label(),
            scenario.label(),
            match scenario.level() {
                RaidLevel::P => "P",
                RaidLevel::PQ => "PQ",
            },
            out.total_ops,
            out.phases[0].ops,
            out.phases[0].cycles,
            out.phases[1].ops,
            out.phases[1].cycles,
            out.phases[2].ops,
            out.phases[2].cycles,
            out.phases[3].ops,
            out.phases[3].cycles,
            tails,
            out.phases.iter().map(|p| p.degraded_fills).sum::<u64>(),
            out.reconstructed_reads,
            out.dropped_writes,
            out.write_intent_lines,
            out.pages_resilvered,
            out.pages_abandoned,
            out.lines_reconstructed,
            out.backpressure_events,
            out.rebuilds_completed,
            out.detections,
            out.recoveries,
            out.quarantines,
            out.wrong_data,
            out.fail_closed,
            out.crashed as u8,
            out.faults_armed,
            out.content_hash,
            out.oracle_hash,
            hash_match as u8,
            seed_for(app, *scenario),
            repro
        );
        violations.extend(out.violations.iter().cloned());
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/degraded_campaign.csv", csv);
    eprintln!("[saved results/degraded_campaign.csv]");
    if !violations.is_empty() {
        eprintln!("INVARIANT VIOLATIONS ({}):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("all degraded-mode invariants held");
}
