//! Parallel cell execution for the campaign binaries.
//!
//! Every evaluation artifact in this repo is a grid of fully independent
//! deterministic simulations — (design × app × workload × fault) cells that
//! each build their own `Machine` and share nothing. The campaign binaries
//! declare that grid as a `Vec<Cell>` and hand it to [`run_cells`], which
//! executes the cells on a worker pool and returns the results **in input
//! order**, so tables and CSV files are byte-identical at every `--jobs`
//! setting.
//!
//! Determinism argument: a cell's closure owns every piece of state its
//! simulation touches (the `Machine`, app instances, RNGs are all built
//! inside it); the pool only chooses *when* and *on which thread* a cell
//! runs, never what it computes. The only shared mutable state is the
//! work-queue index and the slot each cell writes its own result into.
//!
//! Worker count: `--jobs N` (or `--jobs=N`) on the command line beats the
//! `MEMSIM_JOBS` environment variable beats `available_parallelism()`.
//! Progress lines go to stderr only, so piped stdout stays clean.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One unit of work: a label for progress display plus the closure that
/// runs the simulation. The closure owns all of its state (machines are
/// built inside it), which is what keeps parallel execution deterministic.
pub struct Cell<R> {
    /// Shown in the progress line and in [`CellResult`].
    pub label: String,
    run: Box<dyn FnOnce() -> R + Send>,
}

impl<R> Cell<R> {
    /// Package a closure as a runnable cell.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> R + Send + 'static) -> Self {
        Cell {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

/// A completed cell: its label, wall-clock duration, and return value.
#[derive(Debug, Clone)]
pub struct CellResult<R> {
    /// The cell's label.
    pub label: String,
    /// Wall-clock time the cell's closure took.
    pub wall: Duration,
    /// The closure's return value.
    pub value: R,
}

impl<R> CellResult<R> {
    /// Simulated cycles per wall-clock second, given the cell's simulated
    /// cycle count (the simulator-throughput figure `perf_baseline` tracks).
    pub fn sim_cycles_per_sec(&self, sim_cycles: u64) -> f64 {
        sim_cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Worker count for this invocation: the first `--jobs N` / `--jobs=N` in
/// `std::env::args()`, else `MEMSIM_JOBS`, else the machine's available
/// parallelism. Malformed or zero values fall through to the next source.
pub fn jobs() -> usize {
    jobs_from(std::env::args().skip(1))
}

/// Bound-weave engine threads per cell: the first `--threads N` /
/// `--threads=N` in `std::env::args()`, else `MEMSIM_ENGINE_THREADS`,
/// default 1 (pure sequential — the reference oracle). A value of `0` from
/// either source asks for auto-detection via
/// [`std::thread::available_parallelism`]. The intra-run analogue of
/// [`jobs`]'s cross-cell parallelism; results are bit-identical at any
/// value because diverging cells fall back to the sequential path.
pub fn engine_threads() -> usize {
    engine_threads_from(std::env::args().skip(1))
}

fn engine_threads_from(args: impl Iterator<Item = String>) -> usize {
    let requested = parse_threads_args(args).or_else(|| {
        std::env::var("MEMSIM_ENGINE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
    });
    match requested {
        Some(0) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(n) => n,
        None => 1,
    }
}

fn parse_threads_args(mut args: impl Iterator<Item = String>) -> Option<usize> {
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next()?.parse().ok();
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().ok();
        }
    }
    None
}

fn jobs_from(args: impl Iterator<Item = String>) -> usize {
    if let Some(n) = parse_jobs_args(args) {
        return n;
    }
    if let Some(n) = std::env::var("MEMSIM_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_jobs_args(mut args: impl Iterator<Item = String>) -> Option<usize> {
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next()?.parse().ok().filter(|&n| n > 0);
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok().filter(|&n| n > 0);
        }
    }
    None
}

/// Command-line arguments with the `--jobs` and `--threads` forms removed,
/// for binaries that also take positional arguments (e.g. `fig9_ablation`'s
/// group).
pub fn positional_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" || a == "--threads" {
            let _ = args.next();
        } else if !a.starts_with("--jobs=") && !a.starts_with("--threads=") {
            out.push(a);
        }
    }
    out
}

/// Execute `cells` on `jobs` worker threads and return their results in
/// input order. With `jobs <= 1` the cells run serially on the calling
/// thread (no pool), which is the reference order the determinism test
/// compares against. A panicking cell propagates and aborts the campaign,
/// matching the old serial `.expect()` behavior.
///
/// # Panics
///
/// Re-raises the first cell panic after the remaining workers finish their
/// current cells.
pub fn run_cells<R: Send>(cells: Vec<Cell<R>>, jobs: usize) -> Vec<CellResult<R>> {
    let total = cells.len();
    if total == 0 {
        return Vec::new();
    }
    let progress = |done: usize, label: &str, wall: Duration| {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "[{done}/{total}] {label} ({:.2}s)",
            wall.as_secs_f64()
        );
    };
    if jobs <= 1 {
        let mut results = Vec::with_capacity(total);
        for (i, cell) in cells.into_iter().enumerate() {
            let start = Instant::now();
            let value = (cell.run)();
            let wall = start.elapsed();
            progress(i + 1, &cell.label, wall);
            results.push(CellResult {
                label: cell.label,
                wall,
                value,
            });
        }
        return results;
    }
    // Work queue: an atomic cursor over the cell vector; each claimed index
    // is run exactly once and its result stored in the same slot, so the
    // output order equals the input order regardless of completion order.
    let queue: Vec<Mutex<Option<Cell<R>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellResult<R>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(total) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                let cell = queue[i]
                    .lock()
                    .expect("cell slot poisoned")
                    .take()
                    .expect("cell claimed twice");
                let start = Instant::now();
                let value = (cell.run)();
                let wall = start.elapsed();
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(n, &cell.label, wall);
                *slots[i].lock().expect("result slot poisoned") = Some(CellResult {
                    label: cell.label,
                    wall,
                    value,
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("cell produced no result")
        })
        .collect()
}

/// Print a per-cell wall-time / simulated-throughput summary to stderr.
/// `sim_cycles` extracts each cell's simulated cycle count from its value.
pub fn eprint_rates<R>(results: &[CellResult<R>], sim_cycles: impl Fn(&R) -> u64) {
    let mut err = std::io::stderr().lock();
    let total_wall: f64 = results.iter().map(|r| r.wall.as_secs_f64()).sum();
    let _ = writeln!(err, "# per-cell wall time and simulated throughput");
    for r in results {
        let cyc = sim_cycles(&r.value);
        let _ = writeln!(
            err,
            "#   {:<40} {:>8.2}s {:>10.2} Mcyc/s",
            r.label,
            r.wall.as_secs_f64(),
            r.sim_cycles_per_sec(cyc) / 1e6
        );
    }
    let _ = writeln!(
        err,
        "#   total cell wall time {total_wall:.2}s across {} cells",
        results.len()
    );
}

/// Peak resident set size of this process (`VmHWM`) in KiB, when the
/// platform exposes it (`/proc/self/status`). A host-dependent gauge for
/// stderr telemetry and perf-baseline JSON — never for deterministic CSVs.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order_any_jobs() {
        for jobs in [1usize, 2, 4, 9] {
            let cells: Vec<Cell<usize>> = (0..20)
                .map(|i| Cell::new(format!("cell{i}"), move || i * i))
                .collect();
            let results = run_cells(cells, jobs);
            assert_eq!(results.len(), 20);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.label, format!("cell{i}"), "jobs={jobs}");
                assert_eq!(r.value, i * i, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let results = run_cells(Vec::<Cell<u32>>::new(), 4);
        assert!(results.is_empty());
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |v: &[&str]| parse_jobs_args(v.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["--jobs", "8"]), Some(8));
        assert_eq!(parse(&["a", "--jobs=3"]), Some(3));
        assert_eq!(parse(&["--jobs", "0"]), None);
        assert_eq!(parse(&["--jobs", "x"]), None);
        assert_eq!(parse(&["--jobs"]), None);
        assert_eq!(parse(&["b"]), None);
    }

    #[test]
    fn threads_flag_parsing() {
        let parse = |v: &[&str]| parse_threads_args(v.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["--threads", "4"]), Some(4));
        assert_eq!(parse(&["a", "--threads=2"]), Some(2));
        // 0 is a valid request (auto-detect), unlike --jobs.
        assert_eq!(parse(&["--threads", "0"]), Some(0));
        assert_eq!(parse(&["--threads", "x"]), None);
        assert_eq!(parse(&["--threads"]), None);
        assert_eq!(parse(&["b"]), None);
    }

    #[test]
    fn engine_threads_zero_auto_detects() {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let from = |v: &[&str]| engine_threads_from(v.iter().map(|s| s.to_string()));
        assert_eq!(from(&["--threads", "0"]), host);
        assert_eq!(from(&["--threads", "3"]), 3);
    }

    #[test]
    fn sim_rate_uses_wall_time() {
        let r = CellResult {
            label: "x".into(),
            wall: Duration::from_secs(2),
            value: (),
        };
        assert!((r.sim_cycles_per_sec(4_000_000) - 2_000_000.0).abs() < 1.0);
    }
}
