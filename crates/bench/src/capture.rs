//! Streaming trace capture for campaign binaries.
//!
//! Campaign cells that drive a raw file-I/O stream record each op into a
//! chunked `TVT2` file under `results/traces/` through [`TraceWriter`],
//! bounding memory at one chunk regardless of run length (the campaigns
//! used to hold a whole in-memory record vector before serializing — that
//! path is gone). [`CampaignTrace::finish`] closes the file and re-reads
//! it through [`TraceReader`], so a capture that cannot be decoded back
//! record-for-record surfaces as a cell violation, not a silently corrupt
//! artifact.

use memsim::addr::PhysAddr;
use memsim::trace::{TraceReader, TraceRecord, TraceWriter};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

/// One cell's streaming capture: a `TVT2` writer over a buffered file.
pub struct CampaignTrace {
    writer: TraceWriter<BufWriter<File>>,
    path: PathBuf,
}

/// Map a cell context label (`app=fio design=Tvarak fault=...`) to a
/// filesystem-safe stem: every non-alphanumeric run collapses to one `-`.
fn sanitize(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut dash = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    out.truncate(out.trim_end_matches('-').len());
    out
}

impl CampaignTrace {
    /// Open `results/traces/<sanitized label>.tvt2` for streaming capture.
    pub fn create(label: &str) -> std::io::Result<CampaignTrace> {
        let dir = PathBuf::from("results/traces");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.tvt2", sanitize(label)));
        let writer = TraceWriter::new(BufWriter::new(File::create(&path)?))?;
        Ok(CampaignTrace { writer, path })
    }

    /// Append one op. Capture failures are loud: a campaign whose artifact
    /// silently stopped growing would lie about what it replayed.
    pub fn record(&mut self, write: bool, addr: PhysAddr, len: u16) {
        self.writer
            .push(TraceRecord { core: 0, write, addr, len })
            .expect("trace capture write");
    }

    /// Flush, close, and verify the capture by decoding it back. Returns
    /// the record count on success; a human-readable defect otherwise.
    pub fn finish(self) -> Result<u64, String> {
        let written = self.writer.records_written();
        let path = self.path;
        let buf = self
            .writer
            .finish()
            .map_err(|e| format!("trace {}: finish failed: {e}", path.display()))?;
        buf.into_inner()
            .map_err(|e| format!("trace {}: flush failed: {e}", path.display()))?;
        let f = File::open(&path)
            .map_err(|e| format!("trace {}: reopen failed: {e}", path.display()))?;
        let mut r = TraceReader::new(BufReader::new(f))
            .map_err(|e| format!("trace {}: bad header: {e}", path.display()))?;
        for rec in &mut r {
            rec.map_err(|e| format!("trace {}: decode failed: {e}", path.display()))?;
        }
        if r.records_read() != written {
            return Err(format!(
                "trace {}: decoded {} records, wrote {written}",
                path.display(),
                r.records_read()
            ));
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::sanitize;

    #[test]
    fn labels_sanitize_to_safe_stems() {
        assert_eq!(
            sanitize("app=fio design=Tvarak fault=sticky bitflips"),
            "app-fio-design-tvarak-fault-sticky-bitflips"
        );
        assert_eq!(sanitize("  ==x== "), "x");
    }
}
