//! The serve campaign's CSV must be byte-identical at any `--jobs` width
//! and across repeated runs at a fixed seed, with admission counters
//! invariant — the same contract every other campaign binary honours via
//! `bench::runner`, extended here across the knee-bisection rounds (whose
//! probe loads are *decided* from earlier parallel results).

use bench::serve::{
    check_invariants, run_campaign, to_csv, CampaignConfig, ServeScale, ServedApp,
};
use serve::{AdmissionPolicy, ArrivalProcess};

fn test_config() -> CampaignConfig {
    CampaignConfig {
        apps: vec![ServedApp::Fio],
        process: ArrivalProcess::Poisson,
        policy: AdmissionPolicy::Shed,
        knee_rounds: 1,
        scale: ServeScale {
            requests: 400,
            serving_cores: 2,
            keys: 256,
            depth: 8,
        },
    }
}

#[test]
fn csv_byte_identical_across_jobs_and_runs() {
    let cfg = test_config();
    let (rows1, est1) = run_campaign(&cfg, 1);
    let (rows4, est4) = run_campaign(&cfg, 4);
    let (rows1b, est1b) = run_campaign(&cfg, 1);
    let (a, b, c) = (
        to_csv(&rows1, &est1),
        to_csv(&rows4, &est4),
        to_csv(&rows1b, &est1b),
    );
    assert_eq!(a, b, "CSV differs between --jobs 1 and --jobs 4");
    assert_eq!(a, c, "CSV differs between repeated --jobs 1 runs");

    // Admission counters are part of the byte-identity contract, but check
    // them structurally too so a failure names the counter, not a CSV line.
    for (r1, r4) in rows1.iter().zip(&rows4) {
        assert_eq!(r1.report.shed, r4.report.shed, "{}/{}", r1.app, r1.design);
        assert_eq!(
            r1.report.accepted, r4.report.accepted,
            "{}/{}",
            r1.app, r1.design
        );
        assert_eq!(
            r1.report.blocked, r4.report.blocked,
            "{}/{}",
            r1.app, r1.design
        );
    }

    check_invariants(&rows1).expect("campaign invariants");
    // The ladder's heaviest point must land past the saturation knee.
    assert!(
        rows1
            .iter()
            .any(|r| r.phase == "sweep" && r.report.shed > 0),
        "no sweep point shed — ladder never saturated"
    );
}
