//! Slice-by-8 vs. byte-wise CRC32C equivalence, driven by the in-repo PRNG
//! (`apps::rng::Rng`): seeded random buffers at every length 0..256 and
//! every unaligned starting offset, plus incremental-update splits.

use apps::rng::Rng;
use tvarak::checksum::{crc32c, crc32c_bytewise, Crc32c};

#[test]
fn random_buffer_sweep_lengths_and_offsets() {
    let mut rng = Rng::new(0xc4c_32c);
    // A shared buffer longer than the largest (offset + length) window.
    let buf: Vec<u8> = (0..(256 + 16)).map(|_| rng.below(256) as u8).collect();
    for len in 0..=256usize {
        for off in 0..16usize {
            let s = &buf[off..off + len];
            assert_eq!(
                crc32c(s),
                crc32c_bytewise(s),
                "divergence at len {len} offset {off}"
            );
        }
    }
}

#[test]
fn random_split_points_match_one_shot() {
    let mut rng = Rng::new(0x5eed_0511);
    let data: Vec<u8> = (0..4096).map(|_| rng.below(256) as u8).collect();
    for _ in 0..64 {
        let mut h = Crc32c::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let step = 1 + rng.below(257) as usize;
            let end = (pos + step).min(data.len());
            h.update(&data[pos..end]);
            pos = end;
        }
        assert_eq!(h.finalize(), crc32c_bytewise(&data));
    }
}

#[test]
fn every_single_bit_flip_changes_the_crc() {
    let mut rng = Rng::new(0xb17_f11b);
    let base: Vec<u8> = (0..64).map(|_| rng.below(256) as u8).collect();
    let c0 = crc32c(&base);
    for bit in 0..64 * 8 {
        let mut x = base.clone();
        x[bit / 8] ^= 1 << (bit % 8);
        assert_ne!(crc32c(&x), c0, "bit {bit} flip undetected");
        assert_eq!(crc32c(&x), crc32c_bytewise(&x));
    }
}
