//! Adversarial cross-shard epoch generators for the dependency-vector
//! weave engine: access streams crafted to stress exactly the admission
//! protocol's hard cases —
//!
//! - **hook fan-out**: cache-line-granular TVARAK scatters every write's
//!   redundancy work (checksum + parity lines) across other banks, so
//!   epochs routinely carry multi-shard footprints;
//! - **back-to-back DIMM-global epochs**: the page-granular ablation makes
//!   every NVM writeback's footprint page-wide (all shards), chaining
//!   full-mask epochs that must serialize through every shard turn;
//! - **single-shard storms**: all cores hammer one LLC bank, funneling
//!   every epoch through one shard's turn counter.
//!
//! Each generator must be bit-identical to its sequential oracle — same
//! `Stats`, same media hash — at engine threads {2, 4, 8} × weave shards
//! {1, 2, 4}, and must actually run on the weave path (a silent sequential
//! fallback would make the differential vacuous).

use apps::driver::{AppError, Design, Machine, ThreadedRun};
use bench::workloads::{machine, Variant};
use memsim::addr::PAGE;
use memsim::stats::Stats;
use tvarak::controller::TvarakConfig;

const THREADS: [usize; 3] = [2, 4, 8];
const SHARDS: [usize; 3] = [1, 2, 4];

/// Emitter cores driving the stream.
const CORES: usize = 4;
/// Lines each core owns (footprint ≫ the small hierarchy, so writebacks
/// flow continuously).
const LINES_PER_CORE: u64 = 2048;
/// Ops per core per run.
const OPS: u64 = 1200;

#[derive(Clone, Copy, Debug)]
enum Gen {
    /// Scattered writes under cl-granular TVARAK: redundancy hooks fan
    /// epochs out across banks.
    FanOut,
    /// Pure write stream under the page-granular ablation: every
    /// writeback is a DIMM-global (all-shard) epoch.
    GlobalStorm,
    /// Every core pinned to LLC bank 0: all epochs funnel through one
    /// shard (under Baseline the footprint is exactly the line's bank).
    SingleShardStorm,
}

impl Gen {
    fn design(self) -> Design {
        match self {
            Gen::FanOut => Design::Tvarak,
            Gen::GlobalStorm => Design::TvarakAblated(TvarakConfig::naive()),
            Gen::SingleShardStorm => Design::Baseline,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Gen::FanOut => "hook-fan-out",
            Gen::GlobalStorm => "dimm-global-storm",
            Gen::SingleShardStorm => "single-shard-storm",
        }
    }
}

fn pattern(l: u64, v: u64) -> [u8; 64] {
    let mut p = [0u8; 64];
    p[..8].copy_from_slice(&l.to_le_bytes());
    p[8..16].copy_from_slice(&v.to_le_bytes());
    p
}

/// Run one generator at `threads` engine threads and `shards` weave
/// shards; returns the run's stats, media hash, and execution mode.
fn run(gen: Gen, threads: usize, shards: usize) -> (Stats, u64, ThreadedRun) {
    let v = Variant::of(gen.design()).weave_shards(shards);
    let total_lines = CORES as u64 * LINES_PER_CORE;
    let file_pages = total_lines / 64; // LINES_PER_PAGE with 4 KiB pages
    let mut m: Machine = machine(v, file_pages + 1024);
    let file = m.create_dax_file("adv", file_pages * PAGE as u64).expect("pool fits");
    m.reinit_redundancy(&file);
    m.flush();
    let banks = m.sys.config().llc_banks as u64;
    // Bank of a line is `line.0 % banks`; align each core's pinned stream
    // so every access lands in bank 0 regardless of the file's base line.
    let base = file.addr(0).line().0;
    let align = (banks - base % banks) % banks;
    m.reset_stats();
    let mode = apps::driver::run_clocked_threads(&mut m, CORES, OPS, threads, |m, c, i| {
        let span = c as u64 * LINES_PER_CORE;
        let (l, write) = match gen {
            // Stride 13 is coprime to the power-of-two region: the sweep
            // visits every line, rotating through all banks.
            Gen::FanOut => (span + (i * 13 + c as u64) % LINES_PER_CORE, i % 4 != 3),
            Gen::GlobalStorm => (span + (i * 13) % LINES_PER_CORE, true),
            Gen::SingleShardStorm => {
                (span + align + (i % (LINES_PER_CORE / banks - 1)) * banks, i % 4 != 3)
            }
        };
        let off = l * 64;
        if write {
            m.write_file(&file, c, off, &pattern(l, i))?;
        } else {
            let mut buf = [0u8; 64];
            m.read_file(&file, c, off, &mut buf)?;
        }
        Ok(())
    });
    let mode = match mode {
        Ok(mode) => mode,
        Err(AppError::Poisoned(e)) => panic!("unexpected poison: {e:?}"),
        Err(e) => panic!("unexpected app error: {e}"),
    };
    m.flush();
    (m.stats(), m.sys.memory().content_hash(), mode)
}

/// The parallel run must really weave (with the pinned shard count), and
/// must never fall back: the generators are crafted to be eligible and
/// divergence-free.
fn assert_woven(gen: Gen, mode: &ThreadedRun, shards: usize, threads: usize) {
    match mode {
        ThreadedRun::Woven(r) => assert_eq!(
            r.shards(),
            shards,
            "{}: wrong shard count at {threads} threads",
            gen.label()
        ),
        ThreadedRun::Sequential(elig) => panic!(
            "{}: fell back to sequential ({elig:?}) at {threads} threads, {shards} shards",
            gen.label()
        ),
        ThreadedRun::Diverged(kind) => panic!(
            "{}: diverged ({kind:?}) at {threads} threads, {shards} shards",
            gen.label()
        ),
    }
}

fn differential(gen: Gen) {
    let (seq_stats, seq_hash, seq_mode) = run(gen, 1, 1);
    assert!(
        matches!(seq_mode, ThreadedRun::Sequential(_)),
        "{}: single-threaded run is the oracle",
        gen.label()
    );
    for threads in THREADS {
        for shards in SHARDS {
            let (stats, hash, mode) = run(gen, threads, shards);
            assert_woven(gen, &mode, shards, threads);
            assert_eq!(
                seq_stats, stats,
                "{}: stats mismatch at {threads} threads, {shards} shards",
                gen.label()
            );
            assert_eq!(
                seq_hash, hash,
                "{}: media mismatch at {threads} threads, {shards} shards",
                gen.label()
            );
        }
    }
}

#[test]
fn hook_fan_out_is_bit_identical() {
    differential(Gen::FanOut);
}

#[test]
fn back_to_back_dimm_global_epochs_are_bit_identical() {
    differential(Gen::GlobalStorm);
}

#[test]
fn single_shard_storm_is_bit_identical() {
    differential(Gen::SingleShardStorm);
}
