//! Bound-weave differential: every design × {fio, kv} × engine-thread
//! count must reproduce the sequential oracle exactly — same `Stats`
//! (counters, per-core cycles, eviction-order digest) and same final media
//! content. Hardware designs exercise the real bound-weave path; software
//! designs exercise the transparent sequential fallback.

use apps::driver::Design;
use apps::fio::Pattern;
use bench::workloads::{run_fio_threads, run_kv_threads, KvKind, KvWorkload};
use bench::Scale;

fn small_scale() -> Scale {
    let mut s = Scale::quick();
    s.fio_threads = 4;
    s.fio_ops_per_thread = 768;
    s.fio_region_bytes = 256 * 1024;
    s.kv_instances = 4;
    s.kv_keys = 400;
    s.kv_ops = 400;
    s
}

/// Hardware-offload designs must actually complete on the weave path —
/// a silent divergence fallback would make the differential vacuous.
fn assert_mode(design: Design, out: &bench::Outcome, what: &str) {
    use pmemfs::tx::SwScheme;
    if design.sw_scheme() == SwScheme::None {
        assert!(
            out.weave.is_some(),
            "{what}: {design:?} fell back to sequential instead of weaving"
        );
    } else {
        assert!(out.weave.is_none());
    }
}

#[test]
fn fio_identical_across_engine_threads() {
    let s = small_scale();
    for design in Design::all() {
        let seq = run_fio_threads(design, Pattern::RandWrite, &s, 1).unwrap();
        for threads in [2usize, 4] {
            let par = run_fio_threads(design, Pattern::RandWrite, &s, threads).unwrap();
            assert_mode(design, &par, "fio");
            assert_eq!(
                seq.stats, par.stats,
                "fio stats mismatch: {design:?} at {threads} threads"
            );
            assert_eq!(
                seq.content_hash, par.content_hash,
                "fio media mismatch: {design:?} at {threads} threads"
            );
        }
    }
}

#[test]
fn kv_identical_across_engine_threads() {
    let s = small_scale();
    for design in Design::all() {
        let seq = run_kv_threads(design, KvKind::BTree, KvWorkload::Balanced, &s, 1).unwrap();
        for threads in [2usize, 4] {
            let par =
                run_kv_threads(design, KvKind::BTree, KvWorkload::Balanced, &s, threads).unwrap();
            assert_mode(design, &par, "kv");
            assert_eq!(
                seq.stats, par.stats,
                "kv stats mismatch: {design:?} at {threads} threads"
            );
            assert_eq!(
                seq.content_hash, par.content_hash,
                "kv media mismatch: {design:?} at {threads} threads"
            );
        }
    }
}
