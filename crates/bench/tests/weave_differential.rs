//! Bound-weave differential: every design × {fio, kv} × engine-thread
//! count × weave-shard count must reproduce the sequential oracle exactly —
//! same `Stats` (counters, per-core cycles, eviction-order digest) and same
//! final media content. Hardware designs exercise the real bound-weave
//! path; software designs exercise the transparent sequential fallback.
//!
//! The shard sweep pins `SystemConfig::weave_shards` through
//! [`bench::workloads::Variant::weave_shards`]: the shard count only moves
//! *where* replay work runs (which worker drains which per-bank ring), so
//! results must be bit-identical at every (threads, shards) point.

use apps::driver::Design;
use apps::fio::Pattern;
use bench::workloads::{run_fio_threads, run_kv_threads, KvKind, KvWorkload, Variant};
use bench::Scale;

const THREADS: [usize; 3] = [2, 4, 8];
const SHARDS: [usize; 3] = [1, 2, 4];

fn small_scale() -> Scale {
    let mut s = Scale::quick();
    s.fio_threads = 4;
    s.fio_ops_per_thread = 768;
    s.fio_region_bytes = 256 * 1024;
    s.kv_instances = 4;
    s.kv_keys = 400;
    s.kv_ops = 400;
    s
}

/// Hardware-offload designs must actually complete on the weave path —
/// a silent divergence fallback would make the differential vacuous. When
/// the shard count was pinned, the report must show that many shards.
fn assert_mode(design: Design, out: &bench::Outcome, shards: usize, what: &str) {
    use pmemfs::tx::SwScheme;
    if design.sw_scheme() == SwScheme::None {
        let report = out
            .weave
            .as_ref()
            .unwrap_or_else(|| panic!("{what}: {design:?} fell back to sequential instead of weaving"));
        assert_eq!(
            report.shards(),
            shards,
            "{what}: {design:?} ran with the wrong shard count"
        );
        assert_eq!(out.weave_eligibility, "eligible");
    } else {
        assert!(out.weave.is_none());
        assert_eq!(out.weave_eligibility, "sw-scheme");
    }
}

#[test]
fn fio_identical_across_engine_threads_and_shards() {
    let s = small_scale();
    for design in Design::all() {
        let seq = run_fio_threads(design, Pattern::RandWrite, &s, 1).unwrap();
        for threads in THREADS {
            for shards in SHARDS {
                let v = Variant::of(design).weave_shards(shards);
                let par = run_fio_threads(v, Pattern::RandWrite, &s, threads).unwrap();
                assert_mode(design, &par, shards, "fio");
                assert_eq!(
                    seq.stats, par.stats,
                    "fio stats mismatch: {design:?} at {threads} threads, {shards} shards"
                );
                assert_eq!(
                    seq.content_hash, par.content_hash,
                    "fio media mismatch: {design:?} at {threads} threads, {shards} shards"
                );
            }
        }
    }
}

#[test]
fn kv_identical_across_engine_threads_and_shards() {
    let s = small_scale();
    for design in Design::all() {
        let seq = run_kv_threads(design, KvKind::BTree, KvWorkload::Balanced, &s, 1).unwrap();
        for threads in THREADS {
            for shards in SHARDS {
                let v = Variant::of(design).weave_shards(shards);
                let par =
                    run_kv_threads(v, KvKind::BTree, KvWorkload::Balanced, &s, threads).unwrap();
                assert_mode(design, &par, shards, "kv");
                assert_eq!(
                    seq.stats, par.stats,
                    "kv stats mismatch: {design:?} at {threads} threads, {shards} shards"
                );
                assert_eq!(
                    seq.content_hash, par.content_hash,
                    "kv media mismatch: {design:?} at {threads} threads, {shards} shards"
                );
            }
        }
    }
}
