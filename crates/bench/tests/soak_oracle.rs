//! Soak-harness acceptance tests (ISSUE 9): interval-snapshot totals must
//! be bit-identical to the machine's monolithic accumulation, and the whole
//! soak must be deterministic across reruns.

use apps::driver::Design;
use apps::fio::Pattern;
use bench::soak::{soak_fio, soak_kv, SoakConfig, SoakOutcome};
use bench::workloads::{KvKind, KvWorkload, Scale};
use memsim::stats::Stats;

fn quick_cfg() -> (Scale, SoakConfig) {
    let s = Scale::quick();
    let cfg = SoakConfig {
        intervals: 4,
        ops_per_interval: 512,
    };
    (s, cfg)
}

fn assert_soak_invariants(out: &SoakOutcome, cfg: &SoakConfig, instances: u64, label: &str) {
    assert_eq!(out.rows.len() as u64, cfg.intervals, "{label}: interval count");
    for row in &out.rows {
        assert_eq!(row.ops, instances * cfg.ops_per_interval, "{label}: row ops");
        assert_eq!(row.lat.count(), row.ops, "{label}: one latency sample per op");
        assert!(row.interval_cycles > 0, "{label}: time advances each interval");
    }
    out.verify()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    // verify() already re-merges; double-check the headline equality here
    // so a regression in verify() itself cannot silently pass.
    let mut merged = Stats::identity();
    for row in &out.rows {
        merged.merge(&row.delta);
    }
    merged.core_cycles.resize(out.monolithic.core_cycles.len(), 0);
    assert_eq!(merged, out.monolithic, "{label}: merged == monolithic");
}

#[test]
fn fio_soak_snapshots_match_monolithic_for_every_design() {
    let (s, cfg) = quick_cfg();
    for design in Design::all() {
        let out = soak_fio(design, Pattern::RandWrite, &s, &cfg).expect("soak failed");
        assert_soak_invariants(&out, &cfg, s.fio_threads as u64, &format!("fio {design}"));
    }
}

#[test]
fn kv_soak_snapshots_match_monolithic() {
    let (s, cfg) = quick_cfg();
    for design in [Design::Baseline, Design::Tvarak] {
        let out =
            soak_kv(design, KvKind::BTree, KvWorkload::Balanced, &s, &cfg).expect("soak failed");
        assert_soak_invariants(&out, &cfg, s.kv_instances as u64, &format!("kv {design}"));
    }
}

#[test]
fn soak_is_deterministic_across_reruns() {
    let (s, cfg) = quick_cfg();
    let a = soak_fio(Design::Tvarak, Pattern::RandWrite, &s, &cfg).expect("soak failed");
    let b = soak_fio(Design::Tvarak, Pattern::RandWrite, &s, &cfg).expect("soak failed");
    assert_eq!(a.content_hash, b.content_hash, "media digest");
    assert_eq!(a.monolithic.counters, b.monolithic.counters, "totals");
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.delta, rb.delta, "interval {} stats", ra.interval);
        assert_eq!(ra.lat, rb.lat, "interval {} latencies", ra.interval);
    }
}
