//! Golden determinism tests for the parallel cell runner: scheduling must
//! not change any simulated number. One representative cell runs serially
//! and through the pool at `--jobs 4`; `Stats` (every counter, every core
//! clock) and the emitted report rows must be byte-identical.

use apps::driver::Design;
use apps::fio::Pattern;
use bench::runner::{run_cells, Cell};
use bench::workloads::{run_fio, Outcome, Scale};
use bench::{Report, Row};

/// A small fixed scale so the test grid stays fast in CI.
fn tiny() -> Scale {
    let mut s = Scale::quick();
    s.fio_threads = 2;
    s.fio_region_bytes = 128 * 1024;
    s.fio_ops_per_thread = 512;
    s
}

fn grid() -> Vec<Cell<(&'static str, Design, Outcome)>> {
    let mut cells = Vec::new();
    for pattern in [Pattern::SeqWrite, Pattern::RandRead, Pattern::RandWrite] {
        for design in [Design::Baseline, Design::Tvarak] {
            let s = tiny();
            cells.push(Cell::new(
                format!("fio {} {design}", pattern.label()),
                move || {
                    let out = run_fio(design, pattern, &s).expect("workload failed");
                    (pattern.label(), design, out)
                },
            ));
        }
    }
    cells
}

fn report_of(results: &[bench::CellResult<(&'static str, Design, Outcome)>]) -> Report {
    let mut rep = Report::new("determinism");
    for r in results {
        let (label, design, out) = &r.value;
        rep.push(Row::new(label, *design, &out.stats, &out.cfg));
    }
    rep
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let serial = run_cells(grid(), 1);
    let parallel = run_cells(grid(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label, "result order changed");
        let (sl, sd, so) = &s.value;
        let (pl, pd, po) = &p.value;
        assert_eq!(sl, pl);
        assert_eq!(sd, pd);
        // Stats derives PartialEq over every counter and core clock: any
        // cross-cell interference whatsoever shows up here.
        assert_eq!(so.stats, po.stats, "simulated stats differ for {sl} {sd}");
    }
    // The rendered report rows — what lands in results/*.csv — must be
    // byte-identical too (stable ordering, no scheduling leakage).
    let rs = report_of(&serial);
    let rp = report_of(&parallel);
    assert_eq!(rs.to_csv(), rp.to_csv());
    assert_eq!(rs.to_table(), rp.to_table());
    assert_eq!(rs.to_gnuplot("det"), rp.to_gnuplot("det"));
}

/// A scale big enough that every cell's access stream spills the private
/// caches and the LLC, so the eviction-order digest actually observes
/// victim choices. (The `tiny()` scale above fits entirely in L1 and would
/// make the digest a constant.)
fn golden_scale() -> Scale {
    let mut s = Scale::quick();
    s.fio_threads = 2;
    s.fio_region_bytes = 2 * 1024 * 1024;
    s.fio_ops_per_thread = 8 * 1024;
    s
}

fn golden_grid() -> Vec<Cell<(&'static str, Design, Outcome)>> {
    let mut cells = Vec::new();
    for pattern in [Pattern::SeqWrite, Pattern::RandRead, Pattern::RandWrite] {
        for design in [Design::Baseline, Design::Tvarak] {
            let s = golden_scale();
            cells.push(Cell::new(
                format!("fio {} {design}", pattern.label()),
                move || {
                    let out = run_fio(design, pattern, &s).expect("workload failed");
                    (pattern.label(), design, out)
                },
            ));
        }
    }
    cells
}

/// Captured per-cell goldens: (label, eviction-order digest, runtime
/// cycles) for the golden fio grid. A cache data-layout refactor must
/// reproduce every digest — `Stats::evict_hash` folds each array's
/// victim-choice history, so any change to eviction order or victim
/// selection shows up here even when the aggregate counters happen to
/// agree. Re-recorded for the sharded weave engine: DIMM queueing is now
/// per-(dimm × LLC-bank) lane with weighted busy accounting, and
/// redundancy lines are homed with the bank of their *own* interleave
/// (both deliberate model changes; the digests moved with them).
const CELL_GOLDENS: [(&str, u64, u64); 6] = [
    ("fio seq-write Baseline", 6011100812734918193, 1507329),
    ("fio seq-write Tvarak", 2300232934720110932, 1554085),
    ("fio rand-read Baseline", 15666639143644649525, 1507186),
    ("fio rand-read Tvarak", 15666639143644649525, 1708633),
    ("fio rand-write Baseline", 17216780476607221409, 1507186),
    ("fio rand-write Tvarak", 12555696862574539594, 1714843),
];

/// The digest a machine reports when no array ever evicted: the fixed-order
/// fold of each array's FNV basis. Goldens must differ from it, proving the
/// cells exercised the victim-selection path at all.
const NO_EVICTIONS: u64 = 18253574493392921649;

#[test]
fn campaign_cells_match_eviction_goldens() {
    let results = run_cells(golden_grid(), 1);
    assert_eq!(results.len(), CELL_GOLDENS.len());
    for (r, (label, evict, runtime)) in results.iter().zip(CELL_GOLDENS) {
        let (_, _, out) = &r.value;
        assert_eq!(r.label, label);
        assert_ne!(
            out.stats.evict_hash, NO_EVICTIONS,
            "cell {label}: stream never evicted; golden would be vacuous"
        );
        assert_eq!(
            (out.stats.evict_hash, out.stats.runtime_cycles()),
            (evict, runtime),
            "cell {label}: eviction order or runtime diverged from golden"
        );
    }
}

#[test]
fn rerunning_the_same_cell_is_deterministic() {
    // The premise behind the pool: a cell owns all of its state, so running
    // it twice (anywhere, anytime) gives the same simulated numbers.
    let s = tiny();
    let a = run_fio(Design::Tvarak, Pattern::SeqRead, &s).expect("run a");
    let b = run_fio(Design::Tvarak, Pattern::SeqRead, &s).expect("run b");
    assert_eq!(a.stats, b.stats);
}
