//! Golden determinism tests for the parallel cell runner: scheduling must
//! not change any simulated number. One representative cell runs serially
//! and through the pool at `--jobs 4`; `Stats` (every counter, every core
//! clock) and the emitted report rows must be byte-identical.

use apps::driver::Design;
use apps::fio::Pattern;
use bench::runner::{run_cells, Cell};
use bench::workloads::{run_fio, Outcome, Scale};
use bench::{Report, Row};

/// A small fixed scale so the test grid stays fast in CI.
fn tiny() -> Scale {
    let mut s = Scale::quick();
    s.fio_threads = 2;
    s.fio_region_bytes = 128 * 1024;
    s.fio_ops_per_thread = 512;
    s
}

fn grid() -> Vec<Cell<(&'static str, Design, Outcome)>> {
    let mut cells = Vec::new();
    for pattern in [Pattern::SeqWrite, Pattern::RandRead, Pattern::RandWrite] {
        for design in [Design::Baseline, Design::Tvarak] {
            let s = tiny();
            cells.push(Cell::new(
                format!("fio {} {design}", pattern.label()),
                move || {
                    let out = run_fio(design, pattern, &s).expect("workload failed");
                    (pattern.label(), design, out)
                },
            ));
        }
    }
    cells
}

fn report_of(results: &[bench::CellResult<(&'static str, Design, Outcome)>]) -> Report {
    let mut rep = Report::new("determinism");
    for r in results {
        let (label, design, out) = &r.value;
        rep.push(Row::new(label, *design, &out.stats, &out.cfg));
    }
    rep
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let serial = run_cells(grid(), 1);
    let parallel = run_cells(grid(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label, "result order changed");
        let (sl, sd, so) = &s.value;
        let (pl, pd, po) = &p.value;
        assert_eq!(sl, pl);
        assert_eq!(sd, pd);
        // Stats derives PartialEq over every counter and core clock: any
        // cross-cell interference whatsoever shows up here.
        assert_eq!(so.stats, po.stats, "simulated stats differ for {sl} {sd}");
    }
    // The rendered report rows — what lands in results/*.csv — must be
    // byte-identical too (stable ordering, no scheduling leakage).
    let rs = report_of(&serial);
    let rp = report_of(&parallel);
    assert_eq!(rs.to_csv(), rp.to_csv());
    assert_eq!(rs.to_table(), rp.to_table());
    assert_eq!(rs.to_gnuplot("det"), rp.to_gnuplot("det"));
}

#[test]
fn rerunning_the_same_cell_is_deterministic() {
    // The premise behind the pool: a cell owns all of its state, so running
    // it twice (anywhere, anytime) gives the same simulated numbers.
    let s = tiny();
    let a = run_fio(Design::Tvarak, Pattern::SeqRead, &s).expect("run a");
    let b = run_fio(Design::Tvarak, Pattern::SeqRead, &s).expect("run b");
    assert_eq!(a.stats, b.stats);
}
