//! Criterion microbenchmarks of the redundancy primitives: CRC32C
//! checksums, parity XOR/delta, and the layout arithmetic TVARAK's
//! comparators + adders implement in hardware.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use tvarak::checksum::{crc32c, fletcher32, line_checksum, page_checksum, xor_fold};
use tvarak::layout::NvmLayout;
use tvarak::parity::{parity_delta, xor_into, StripeGeometry};

fn bench_checksums(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    let line = [0xa5u8; 64];
    g.throughput(Throughput::Bytes(64));
    g.bench_function("crc32c/line-64B", |b| {
        b.iter(|| line_checksum(black_box(&line)))
    });
    let page = vec![0x5au8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("crc32c/page-4KB", |b| {
        b.iter(|| page_checksum(black_box(&page)))
    });
    let large = vec![0x3cu8; 1 << 20];
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("crc32c/1MB", |b| b.iter(|| crc32c(black_box(&large))));
    // Alternative checksum functions (engineering-choice comparison).
    g.throughput(Throughput::Bytes(64));
    g.bench_function("fletcher32/line-64B", |b| {
        b.iter(|| fletcher32(black_box(&line)))
    });
    g.bench_function("xor_fold/line-64B", |b| {
        b.iter(|| xor_fold(black_box(&line)))
    });
    g.finish();
}

fn bench_parity(c: &mut Criterion) {
    let mut g = c.benchmark_group("parity");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("xor_into/line", |b| {
        b.iter_batched(
            || ([1u8; 64], [2u8; 64]),
            |(mut a, bb)| {
                xor_into(&mut a, &bb);
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("parity_delta/line", |b| {
        b.iter_batched(
            || ([1u8; 64], [2u8; 64], [3u8; 64]),
            |(mut p, old, new)| {
                parity_delta(&mut p, &old, &new);
                p
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_raid6(c: &mut Criterion) {
    use tvarak::raid6;
    let stripe: Vec<[u8; 64]> = (0..3u8).map(|i| [i.wrapping_mul(37); 64]).collect();
    let (p, q) = raid6::encode(&stripe);
    let mut g = c.benchmark_group("raid6");
    g.throughput(Throughput::Bytes(3 * 64));
    g.bench_function("encode/3-member-stripe", |b| {
        b.iter(|| raid6::encode(black_box(&stripe)))
    });
    let holes: Vec<Option<[u8; 64]>> = vec![None, Some(stripe[1]), None];
    g.bench_function("recover_two/3-member-stripe", |b| {
        b.iter(|| raid6::recover_two(black_box(&holes), &p, &q, 0, 2))
    });
    g.finish();
}

fn bench_layout(c: &mut Criterion) {
    let layout = NvmLayout::new(4, 100_000);
    let geom = StripeGeometry::new(4);
    let line = layout.nth_data_page(54_321).line(17);
    let mut g = c.benchmark_group("layout");
    g.bench_function("cl_csum_loc", |b| {
        b.iter(|| layout.cl_csum_loc(black_box(line)))
    });
    g.bench_function("parity_line_of", |b| {
        b.iter(|| layout.parity_line_of(black_box(line)))
    });
    g.bench_function("nth_data_page", |b| {
        b.iter(|| layout.nth_data_page(black_box(54_321)))
    });
    g.bench_function("is_parity_page", |b| {
        b.iter(|| geom.is_parity_page(black_box(72_431)))
    });
    g.finish();
}

criterion_group!(benches, bench_checksums, bench_parity, bench_raid6, bench_layout);
criterion_main!(benches);
