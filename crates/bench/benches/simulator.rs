//! Criterion benchmarks of the simulator itself (host-time cost per
//! simulated access), with and without the TVARAK controller — useful for
//! estimating figure-regeneration wall time.

use apps::driver::{Design, Machine};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn machine(design: Design) -> (Machine, pmemfs::FileHandle) {
    let mut m = Machine::builder()
        .small()
        .design(design)
        .data_pages(2048)
        .build();
    let f = m.create_dax_file("bench", 4 * 1024 * 1024).unwrap();
    (m, f)
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(1));

    // L1-hit loads.
    let (mut m, f) = machine(Design::Baseline);
    f.write_u64(&mut m.sys, 0, 0, 1).unwrap();
    g.bench_function("load/l1-hit", |b| {
        b.iter(|| f.read_u64(&mut m.sys, 0, black_box(0)).unwrap())
    });

    // Streaming cold NVM loads (baseline vs tvarak): each iteration touches
    // a fresh line; wraps over a 4 MB file that outsizes the small LLC.
    for design in [Design::Baseline, Design::Tvarak] {
        let (mut m, f) = machine(design);
        let lines = f.len() / 64;
        let mut i = 0u64;
        g.bench_function(format!("load/nvm-stream/{}", design.label()), |b| {
            b.iter(|| {
                let off = (i % lines) * 64;
                i = i.wrapping_add(97); // stride to defeat reuse
                f.read_u64(&mut m.sys, 0, off).unwrap()
            })
        });
    }

    // Streaming stores with writeback pressure.
    for design in [Design::Baseline, Design::Tvarak] {
        let (mut m, f) = machine(design);
        let lines = f.len() / 64;
        let mut i = 0u64;
        g.bench_function(format!("store/nvm-stream/{}", design.label()), |b| {
            b.iter(|| {
                let off = (i % lines) * 64;
                i = i.wrapping_add(97);
                f.write_u64(&mut m.sys, 0, off, i).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
