//! Criterion benchmarks wrapping miniature versions of the paper's
//! workloads (host time). The *figure data* comes from the `fig8_*`,
//! `fig9_*`, and `fig10_*` binaries, which report simulated metrics; these
//! benches track the harness's own performance so regressions in simulator
//! speed are caught.

use apps::driver::Design;
use apps::fio::Pattern;
use apps::stream::Kernel;
use bench::workloads::{
    run_fio, run_kv, run_redis, run_stream, KvKind, KvWorkload, RedisWorkload, Scale,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn tiny() -> Scale {
    let mut s = Scale::quick();
    s.redis_instances = 1;
    s.redis_keys = 300;
    s.redis_ops = 300;
    s.kv_instances = 1;
    s.kv_keys = 300;
    s.kv_ops = 300;
    s.fio_threads = 1;
    s.fio_region_bytes = 128 * 1024;
    s.fio_ops_per_thread = 1024;
    s.stream_threads = 1;
    s.stream_array_bytes = 128 * 1024;
    s
}

fn bench_workloads(c: &mut Criterion) {
    let s = tiny();
    let mut g = c.benchmark_group("workloads");
    g.sample_size(10);
    g.bench_function("redis-set/baseline", |b| {
        b.iter(|| run_redis(Design::Baseline, RedisWorkload::SetOnly, &s).unwrap())
    });
    g.bench_function("redis-set/tvarak", |b| {
        b.iter(|| run_redis(Design::Tvarak, RedisWorkload::SetOnly, &s).unwrap())
    });
    g.bench_function("ctree-insert/tvarak", |b| {
        b.iter(|| run_kv(Design::Tvarak, KvKind::CTree, KvWorkload::InsertOnly, &s).unwrap())
    });
    g.bench_function("fio-randwrite/tvarak", |b| {
        b.iter(|| run_fio(Design::Tvarak, Pattern::RandWrite, &s).unwrap())
    });
    g.bench_function("stream-triad/tvarak", |b| {
        b.iter(|| run_stream(Design::Tvarak, Kernel::Triad, &s).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
