//! HDR-style log-bucketed latency histogram.
//!
//! Latency distributions span four-plus orders of magnitude (an LLC-hit
//! request costs tens of cycles; a request queued behind a saturated NVM
//! DIMM costs millions), so the histogram buckets values logarithmically:
//! every octave `[2^e, 2^(e+1))` is split into [`SUB`] linear sub-buckets,
//! bounding the relative quantile error at `2^-SUB_BITS` (3.125%). Values
//! below `2 * SUB` are recorded exactly.
//!
//! [`Hist::merge`] follows the same associative/commutative contract as
//! `memsim::stats::Stats::merge`, with [`Hist::new`] as the identity:
//! per-core shards recorded independently and merged in any order or
//! grouping are bit-identical to one monolithic histogram fed the combined
//! stream (`serve/tests/hist_props.rs` proves it on randomized sequences).
//! The open-loop dispatch loop leans on this exactly as the sharded weave
//! engine leans on `Stats::merge`: each serving core records into its own
//! shard and the report merges once at the end.

/// Sub-bucket resolution in bits: each octave holds `2^SUB_BITS` linear
/// sub-buckets, so any reported quantile is within `2^-SUB_BITS` (3.125%)
/// of the true sample.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
pub const SUB: u64 = 1 << SUB_BITS;
/// Bucket count: the exact low range `[0, 2*SUB)` plus `SUB` sub-buckets
/// for every octave `2^6 ..= 2^63`.
const BUCKETS: usize = (2 * SUB as usize) + (64 - 1 - SUB_BITS as usize) * SUB as usize;

/// A mergeable log-bucketed histogram of `u64` samples (cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

/// Bucket index of value `v`.
#[inline]
fn index_of(v: u64) -> usize {
    if v < 2 * SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // v in [2^exp, 2^(exp+1)), exp >= SUB_BITS+1
    let sub = (v >> (exp - SUB_BITS as u64)) - SUB;
    (2 * SUB + (exp - SUB_BITS as u64 - 1) * SUB + sub) as usize
}

/// Inclusive value range `[lo, hi]` covered by bucket `i`.
#[inline]
fn bounds_of(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < 2 * SUB {
        return (i, i);
    }
    let exp = (i - 2 * SUB) / SUB + SUB_BITS as u64 + 1;
    let sub = (i - 2 * SUB) % SUB;
    let width = 1u64 << (exp - SUB_BITS as u64);
    let lo = (SUB + sub) << (exp - SUB_BITS as u64);
    (lo, lo + (width - 1))
}

impl Hist {
    /// An empty histogram — the identity element of [`Hist::merge`].
    pub fn new() -> Self {
        Hist {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of sample `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index_of(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the sample of rank `ceil(q * count)`, clamped to the exact
    /// observed maximum. Reported values therefore *bound the true sample
    /// from above* within one sub-bucket width (≤ 3.125% relative error);
    /// the bucket's lower bound is `quantile_bounds(q).0`. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// The `[lo, hi]` value range of the bucket holding the `q`-quantile
    /// sample (`hi` clamped to the observed maximum). The true sample of
    /// rank `ceil(q * count)` lies within this range.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bounds_of(i);
                return (lo, hi.min(self.max));
            }
        }
        (self.max, self.max)
    }

    /// Median (see [`Hist::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (see [`Hist::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (see [`Hist::quantile`]).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold another histogram shard into this one.
    ///
    /// # Merge contract
    ///
    /// Associative and commutative, with [`Hist::new`] as identity: bucket
    /// counts add element-wise, `count`/`sum` add, `min`/`max` combine by
    /// min/max. Recording disjoint slices of one sample stream into shards
    /// and merging them (any order, any grouping) is bit-identical to
    /// recording the whole stream into one histogram.
    pub fn merge(&mut self, other: &Hist) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Drain this histogram, returning its contents and leaving the identity
    /// ([`Hist::new`]) behind — the interval-snapshot primitive.
    ///
    /// Unlike `Counters`, a histogram has no sound `delta_since`: interval
    /// `min`/`max` (and hence interval quantile clamping) are not derivable
    /// from two cumulative snapshots. A soak loop therefore `take`s the hist
    /// at each interval boundary instead; merging the taken intervals back
    /// together (any order, any grouping, per the [`Hist::merge`] contract)
    /// is bit-identical to one histogram fed the whole stream.
    pub fn take(&mut self) -> Hist {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_range_is_exact() {
        for v in 0..2 * SUB {
            assert_eq!(bounds_of(index_of(v)), (v, v), "v={v}");
        }
    }

    #[test]
    fn every_value_lands_in_its_bucket() {
        for shift in 0..64u32 {
            for off in [0u64, 1, 2, 7] {
                let v = (1u64 << shift).saturating_add(off);
                let (lo, hi) = bounds_of(index_of(v));
                assert!(lo <= v && v <= hi, "v={v} bucket=[{lo},{hi}]");
            }
        }
        let (lo, hi) = bounds_of(index_of(u64::MAX));
        assert!(lo > 0, "top bucket starts above zero");
        assert_eq!(hi, u64::MAX, "top bucket covers the maximum");
    }

    #[test]
    fn buckets_tile_without_gaps() {
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bounds_of(i);
            let (lo_next, _) = bounds_of(i + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {i} and {}", i + 1);
        }
    }

    #[test]
    fn relative_error_bounded() {
        for &v in &[100u64, 1000, 65_537, 1 << 30, (1 << 40) + 12345] {
            let (lo, hi) = bounds_of(index_of(v));
            assert!((hi - lo) as f64 <= v as f64 / SUB as f64, "v={v}");
        }
    }

    #[test]
    fn quantiles_of_known_stream() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // True p50 = 500; reported bucket upper bound is within 3.125%.
        let p50 = h.p50();
        assert!((500..=516).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_hist_is_all_zero() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_identity() {
        let mut h = Hist::new();
        h.record_n(42, 3);
        h.record(1 << 20);
        let mut i = Hist::new();
        i.merge(&h);
        assert_eq!(i, h);
        let mut h2 = h.clone();
        h2.merge(&Hist::new());
        assert_eq!(h2, h);
    }

    #[test]
    fn take_drains_and_intervals_remerge() {
        let mut live = Hist::new();
        let mut oracle = Hist::new();
        let mut remerged = Hist::new();
        for (i, v) in [3u64, 70_000, 12, 9_999_999, 64, 1, 80_000].iter().enumerate() {
            live.record(*v);
            oracle.record(*v);
            if i % 3 == 2 {
                remerged.merge(&live.take());
                assert_eq!(live, Hist::new(), "take leaves the identity");
            }
        }
        remerged.merge(&live.take());
        assert_eq!(remerged, oracle);
    }

    #[test]
    fn max_is_exact_even_when_bucketed() {
        let mut h = Hist::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(1.0), 1_000_003);
    }
}
