//! Per-core bounded request queues with admission control.
//!
//! Modeled on the NVMe per-core queue-pair design (one submission queue per
//! serving core, fixed depth, no cross-core locking — see the openvmm
//! `nvme_manager` architecture referenced in SNIPPETS.md): every request is
//! routed to exactly one core's queue, and the queue's depth cap is the
//! admission-control point. Two policies when a queue is full:
//!
//! - [`AdmissionPolicy::Shed`]: the request is rejected at ingress and
//!   counted — goodput is sacrificed to keep queueing delay (and therefore
//!   tail latency) bounded.
//! - [`AdmissionPolicy::Block`]: the request waits at ingress (clients
//!   buffer; nothing is dropped) — accepted equals offered, and past
//!   saturation the unbounded backlog is *supposed* to melt the tail. Each
//!   arrival that finds the queue at or over the cap counts one block
//!   event.

use crate::arrival::Request;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// What to do with an arrival that finds its core's queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject the request at ingress (counted; bounded queueing delay).
    Shed,
    /// Hold the request at ingress until the queue drains (nothing
    /// dropped; unbounded backlog past saturation).
    Block,
}

impl AdmissionPolicy {
    /// Short label for reports (the canonical [`FromStr`] spelling).
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Shed => "shed",
            AdmissionPolicy::Block => "block",
        }
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An admission-policy name that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown admission policy {:?} (expected shed or block)", self.0)
    }
}

impl Error for ParsePolicyError {}

impl FromStr for AdmissionPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "shed" => Ok(AdmissionPolicy::Shed),
            "block" => Ok(AdmissionPolicy::Block),
            _ => Err(ParsePolicyError(s.to_string())),
        }
    }
}

/// Admission-control configuration shared by every per-core queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Queue-depth cap per core (requests awaiting service; the in-service
    /// request does not occupy a slot, mirroring an NVMe submission queue
    /// whose head has been consumed).
    pub depth: usize,
    /// Policy when an arrival finds the queue full.
    pub policy: AdmissionPolicy,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            depth: 16,
            policy: AdmissionPolicy::Shed,
        }
    }
}

/// Outcome of offering one request to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued within the depth cap.
    Accepted,
    /// Rejected at ingress ([`AdmissionPolicy::Shed`] with a full queue).
    Shed,
    /// Enqueued past the depth cap ([`AdmissionPolicy::Block`]; the
    /// overflow models clients buffering at ingress).
    Blocked,
}

/// One core's bounded FIFO submission queue plus its admission counters.
#[derive(Debug, Clone)]
pub struct CoreQueue {
    cfg: QueueConfig,
    fifo: VecDeque<Request>,
    /// Requests admitted (accepted + blocked).
    pub admitted: u64,
    /// Requests rejected at ingress.
    pub shed: u64,
    /// Admitted arrivals that found the queue at or over the cap.
    pub blocked: u64,
    /// High-water mark of queue occupancy.
    pub peak_depth: usize,
}

impl CoreQueue {
    /// An empty queue under `cfg`.
    pub fn new(cfg: QueueConfig) -> Self {
        CoreQueue {
            cfg,
            fifo: VecDeque::new(),
            admitted: 0,
            shed: 0,
            blocked: 0,
            peak_depth: 0,
        }
    }

    /// Offer `req` to the queue, applying the admission policy.
    pub fn offer(&mut self, req: Request) -> Admission {
        let full = self.fifo.len() >= self.cfg.depth;
        match (full, self.cfg.policy) {
            (true, AdmissionPolicy::Shed) => {
                self.shed += 1;
                Admission::Shed
            }
            (full, _) => {
                self.fifo.push_back(req);
                self.admitted += 1;
                self.peak_depth = self.peak_depth.max(self.fifo.len());
                if full {
                    self.blocked += 1;
                    Admission::Blocked
                } else {
                    Admission::Accepted
                }
            }
        }
    }

    /// The request at the head of the queue, if any.
    pub fn front(&self) -> Option<&Request> {
        self.fifo.front()
    }

    /// Dequeue the head request for service.
    pub fn pop(&mut self) -> Option<Request> {
        self.fifo.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64) -> Request {
        Request {
            seq,
            arrival: seq * 10,
            key: seq,
            write: false,
        }
    }

    #[test]
    fn policy_display_roundtrips() {
        for p in [AdmissionPolicy::Shed, AdmissionPolicy::Block] {
            assert_eq!(p.to_string().parse::<AdmissionPolicy>(), Ok(p));
        }
        assert!("drop".parse::<AdmissionPolicy>().is_err());
    }

    #[test]
    fn shed_rejects_past_depth() {
        let mut q = CoreQueue::new(QueueConfig {
            depth: 2,
            policy: AdmissionPolicy::Shed,
        });
        assert_eq!(q.offer(req(0)), Admission::Accepted);
        assert_eq!(q.offer(req(1)), Admission::Accepted);
        assert_eq!(q.offer(req(2)), Admission::Shed);
        assert_eq!((q.admitted, q.shed, q.len()), (2, 1, 2));
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.offer(req(3)), Admission::Accepted);
        assert_eq!(q.peak_depth, 2);
    }

    #[test]
    fn block_admits_past_depth_and_counts() {
        let mut q = CoreQueue::new(QueueConfig {
            depth: 1,
            policy: AdmissionPolicy::Block,
        });
        assert_eq!(q.offer(req(0)), Admission::Accepted);
        assert_eq!(q.offer(req(1)), Admission::Blocked);
        assert_eq!(q.offer(req(2)), Admission::Blocked);
        assert_eq!((q.admitted, q.shed, q.blocked, q.len()), (3, 0, 2, 3));
        assert_eq!(q.peak_depth, 3);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = CoreQueue::new(QueueConfig::default());
        for s in 0..5 {
            q.offer(req(s));
        }
        for s in 0..5 {
            assert_eq!(q.pop().unwrap().seq, s);
        }
        assert!(q.is_empty());
    }
}
