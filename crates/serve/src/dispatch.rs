//! The simulated-clock dispatch loop: open-loop arrivals → per-core
//! queues → the machine, with per-core latency-histogram shards.
//!
//! The loop is a discrete-event simulation over the machine's per-core
//! simulated clocks. At every step it chooses between the earliest pending
//! *service start* (the core whose head-of-queue request could begin
//! soonest) and the next *arrival*, processing whichever comes first in
//! simulated time — reproducing how independent per-core queue pairs drain
//! against a shared memory system. Service uses
//! `System::idle_until(core, t)` to align the core's clock with the
//! request's arrival when the core is idle, so queueing delay is exactly
//! `service_start - arrival` and end-to-end latency is
//! `completion - arrival`, both in simulated cycles.
//!
//! Everything is deterministic: a seeded request stream, FIFO queues,
//! lowest-core-index tie-breaking, and a single simulation thread per cell
//! (cross-cell parallelism comes from `bench::runner`). Latencies are
//! recorded into per-core [`Hist`] shards merged once at the end, the same
//! associative/commutative contract `Stats::merge` follows.

use crate::arrival::Request;
use crate::hist::Hist;
use crate::queue::{Admission, CoreQueue, QueueConfig};
use apps::driver::{AppError, Machine};

/// Aggregated outcome of one open-loop serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests the generator offered.
    pub offered: u64,
    /// Requests admitted and served (offered − shed).
    pub accepted: u64,
    /// Requests rejected at ingress (admission control).
    pub shed: u64,
    /// Admitted arrivals that found their queue at or over the depth cap
    /// (block policy only; 0 under shed).
    pub blocked: u64,
    /// Requests actually served to completion (== accepted: admitted work
    /// is never abandoned).
    pub completed: u64,
    /// High-water mark of queue occupancy across all cores.
    pub peak_depth: usize,
    /// End-to-end latency (completion − arrival), merged across core
    /// shards.
    pub latency: Hist,
    /// Queueing delay only (service start − arrival).
    pub queueing: Hist,
    /// Service time only (completion − service start).
    pub service: Hist,
    /// Simulated cycles from time 0 to the last completion.
    pub span_cycles: u64,
    /// Per-core end-to-end latency shards (merge of these == `latency`).
    pub core_latency: Vec<Hist>,
}

impl ServeReport {
    /// Served throughput in requests per kilocycle over the run's span.
    pub fn throughput_per_kcycle(&self) -> f64 {
        if self.span_cycles == 0 {
            0.0
        } else {
            self.completed as f64 * 1000.0 / self.span_cycles as f64
        }
    }
}

/// Serve an open-loop request stream on `serving_cores` per-core queues.
///
/// `requests` must be sorted by arrival (as [`crate::arrival::generate`]
/// produces). Requests are routed round-robin by sequence number — request
/// `seq` to core `seq % serving_cores` — mirroring per-connection NVMe
/// queue-pair affinity. `exec` runs one admitted request on its core and
/// is the only place application state is touched.
///
/// # Errors
///
/// Propagates the first `exec` error; the report is abandoned.
///
/// # Panics
///
/// Panics if `serving_cores` is 0 or exceeds the machine's core count, or
/// if `requests` is not sorted by arrival.
pub fn serve_open_loop<F>(
    m: &mut Machine,
    serving_cores: usize,
    requests: &[Request],
    qc: QueueConfig,
    mut exec: F,
) -> Result<ServeReport, AppError>
where
    F: FnMut(&mut Machine, usize, &Request) -> Result<(), AppError>,
{
    assert!(
        serving_cores >= 1 && serving_cores <= m.sys.num_cores(),
        "serving_cores must be in 1..=machine cores"
    );
    assert!(
        requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "requests must be sorted by arrival"
    );
    let mut queues: Vec<CoreQueue> = (0..serving_cores).map(|_| CoreQueue::new(qc)).collect();
    let mut latency: Vec<Hist> = (0..serving_cores).map(|_| Hist::new()).collect();
    let mut queueing = Hist::new();
    let mut service = Hist::new();
    let mut completed = 0u64;
    let mut last_completion = 0u64;

    // Serve the head request of `core`'s queue: idle to its arrival if the
    // core drained, run it, record the latency split.
    let mut serve_one = |m: &mut Machine,
                         queues: &mut Vec<CoreQueue>,
                         latency: &mut Vec<Hist>,
                         core: usize|
     -> Result<(), AppError> {
        let req = queues[core].pop().expect("serve_one on empty queue");
        m.sys.idle_until(core, req.arrival);
        let start = m.sys.clock(core);
        exec(m, core, &req)?;
        let done = m.sys.clock(core);
        latency[core].record(done - req.arrival);
        queueing.record(start - req.arrival);
        service.record(done - start);
        completed += 1;
        last_completion = last_completion.max(done);
        Ok(())
    };

    // Earliest possible service start among non-empty queues, lowest core
    // index winning ties — the deterministic analogue of hardware doorbell
    // arbitration.
    let next_service = |m: &Machine, queues: &[CoreQueue]| -> Option<(u64, usize)> {
        queues
            .iter()
            .enumerate()
            .filter_map(|(c, q)| {
                q.front()
                    .map(|r| (m.sys.clock(c).max(r.arrival), c))
            })
            .min()
    };

    for req in requests {
        // Drain every service that would start strictly before this
        // arrival, so each queue's occupancy at admission time is exactly
        // what the request would find.
        while let Some((start, core)) = next_service(m, &queues) {
            if start >= req.arrival {
                break;
            }
            serve_one(m, &mut queues, &mut latency, core)?;
        }
        let core = (req.seq % serving_cores as u64) as usize;
        let _ = match queues[core].offer(*req) {
            Admission::Shed => continue,
            admitted => admitted,
        };
    }
    // Arrivals exhausted: drain everything still queued.
    while let Some((_, core)) = next_service(m, &queues) {
        serve_one(m, &mut queues, &mut latency, core)?;
    }

    let mut merged = Hist::new();
    for shard in &latency {
        merged.merge(shard);
    }
    let shed: u64 = queues.iter().map(|q| q.shed).sum();
    let accepted: u64 = queues.iter().map(|q| q.admitted).sum();
    debug_assert_eq!(accepted + shed, requests.len() as u64);
    debug_assert_eq!(completed, accepted);
    Ok(ServeReport {
        offered: requests.len() as u64,
        accepted,
        shed,
        blocked: queues.iter().map(|q| q.blocked).sum(),
        completed,
        peak_depth: queues.iter().map(|q| q.peak_depth).max().unwrap_or(0),
        latency: merged,
        queueing,
        service,
        span_cycles: last_completion,
        core_latency: latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{generate, ArrivalProcess, RequestMix};
    use crate::queue::AdmissionPolicy;
    use apps::driver::Design;
    use memsim::PAGE;
    use pmemfs::fs::FileHandle;

    fn machine() -> (Machine, Vec<FileHandle>) {
        let mut m = Machine::builder()
            .small()
            .design(Design::Baseline)
            .data_pages(256)
            .build();
        let files = (0..2)
            .map(|_| m.create_dax_file("serve", 8 * PAGE as u64).unwrap())
            .collect();
        (m, files)
    }

    fn run(
        mean_gap: f64,
        policy: AdmissionPolicy,
        depth: usize,
    ) -> ServeReport {
        let (mut m, files) = machine();
        m.reset_stats();
        let reqs = generate(
            ArrivalProcess::Poisson,
            mean_gap,
            400,
            &RequestMix::default(),
            42,
        );
        let qc = QueueConfig { depth, policy };
        serve_open_loop(&mut m, 2, &reqs, qc, |m, core, r| {
            let lines = files[core].len() / 64;
            let off = (r.key % lines) * 64;
            if r.write {
                files[core].write(&mut m.sys, core, off, &[r.seq as u8; 64])?;
            } else {
                let mut buf = [0u8; 64];
                files[core].read(&mut m.sys, core, off, &mut buf)?;
            }
            Ok(())
        })
        .unwrap()
    }

    #[test]
    fn accounting_is_exact_under_light_load() {
        let r = run(5000.0, AdmissionPolicy::Shed, 8);
        assert_eq!(r.offered, 400);
        assert_eq!(r.accepted + r.shed, r.offered);
        assert_eq!(r.completed, r.accepted);
        assert_eq!(r.latency.count(), r.completed);
        assert_eq!(r.shed, 0, "light load must not shed");
        assert_eq!(r.blocked, 0);
    }

    #[test]
    fn overload_sheds_and_accounts_exactly() {
        let r = run(1.0, AdmissionPolicy::Shed, 4);
        assert!(r.shed > 0, "gap 1 cycle must saturate");
        assert_eq!(r.accepted + r.shed, r.offered);
        assert_eq!(r.completed, r.accepted);
        assert!(r.peak_depth <= 4);
    }

    #[test]
    fn block_policy_never_sheds_but_melts_tail() {
        let shed = run(1.0, AdmissionPolicy::Shed, 4);
        let block = run(1.0, AdmissionPolicy::Block, 4);
        assert_eq!(block.shed, 0);
        assert_eq!(block.accepted, block.offered);
        assert!(block.blocked > 0);
        assert!(block.peak_depth > 4);
        assert!(
            block.latency.p999() > shed.latency.p999(),
            "block p999 {} must exceed shed p999 {}",
            block.latency.p999(),
            shed.latency.p999()
        );
    }

    #[test]
    fn light_load_latency_is_mostly_service() {
        let r = run(5000.0, AdmissionPolicy::Shed, 8);
        // With arrivals far apart, queueing is ~0 and e2e ≈ service.
        assert_eq!(r.queueing.p50(), 0);
        assert!(r.latency.p50() <= r.service.p50() + r.service.p50() / 16);
    }

    #[test]
    fn shard_merge_equals_report_latency() {
        let r = run(50.0, AdmissionPolicy::Shed, 8);
        let mut merged = Hist::new();
        for s in &r.core_latency {
            merged.merge(s);
        }
        assert_eq!(merged, r.latency);
        assert_eq!(
            r.core_latency.iter().map(Hist::count).sum::<u64>(),
            r.completed
        );
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let a = run(40.0, AdmissionPolicy::Shed, 6);
        let b = run(40.0, AdmissionPolicy::Shed, 6);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.span_cycles, b.span_cycles);
    }
}
