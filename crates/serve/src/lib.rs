//! Open-loop request-serving front end for the TVARAK machine model.
//!
//! Closed-loop benchmarks (each worker issues its next op the moment the
//! previous one retires) self-throttle at saturation and therefore cannot
//! observe queueing delay — the dominant component of tail latency in a
//! loaded store. This crate adds the missing front end:
//!
//! - [`arrival`]: seeded, deterministic open-loop request generation —
//!   uniform, Poisson, and bursty arrival processes with YCSB-style hot-key
//!   skew ([`ArrivalProcess`], [`generate`]).
//! - [`queue`]: per-core bounded FIFO submission queues with admission
//!   control, modeled on the NVMe per-core queue-pair design
//!   ([`CoreQueue`], [`AdmissionPolicy`]).
//! - [`dispatch`]: the simulated-clock dispatch loop that drains the
//!   queues against an `apps::driver::Machine` and measures end-to-end,
//!   queueing, and service latency per request ([`serve_open_loop`]).
//! - [`hist`]: HDR-style log-bucketed latency histograms with the same
//!   associative/commutative merge contract as `Stats::merge`, so per-core
//!   shards merge bit-identically to a monolithic histogram ([`Hist`]).
//!
//! The `serve_campaign` binary in the `bench` crate sweeps offered load
//! across all five redundancy designs with this machinery and reports
//! throughput-vs-offered-load plus p50/p99/p999 per sweep point.

#![warn(missing_docs)]

pub mod arrival;
pub mod dispatch;
pub mod hist;
pub mod queue;

pub use arrival::{generate, ArrivalProcess, Request, RequestMix};
pub use dispatch::{serve_open_loop, ServeReport};
pub use hist::Hist;
pub use queue::{Admission, AdmissionPolicy, CoreQueue, QueueConfig};
