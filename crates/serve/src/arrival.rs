//! Open-loop arrival generation: seeded, deterministic request streams.
//!
//! An open-loop generator emits requests at timestamps drawn from an
//! arrival process, *independent of service progress* — exactly what a
//! population of remote clients does to a loaded service, and the property
//! closed-loop benchmarks cannot model (a closed loop self-throttles at
//! saturation, hiding the queueing that produces tail latency). Keys are
//! drawn from the YCSB-style skewed chooser (`apps::ycsb::SkewedKeys`) so a
//! hot-key set concentrates traffic the way real KV front ends see it.

use apps::rng::Rng;
use apps::ycsb::SkewedKeys;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// The arrival process shaping request inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed inter-arrival gap (deterministic rate; the paced-load-tester
    /// baseline).
    Uniform,
    /// Poisson arrivals: exponentially distributed gaps (independent
    /// clients).
    Poisson,
    /// Bursty arrivals: Poisson modulated by an on/off square wave — the
    /// on phase runs at `burst ×` the nominal rate (mean gap `mean/burst`)
    /// and the off phase compensates with mean gap `mean * (2 - 1/burst)`,
    /// so the long-run offered rate is conserved exactly while arrivals
    /// concentrate into bursts that stress queue depth.
    Bursty {
        /// Burst intensity multiplier (> 1.0): the on-phase rate relative
        /// to nominal.
        burst: f64,
    },
}

/// Default burst intensity for `bursty` parsed without an argument.
pub const DEFAULT_BURST: f64 = 4.0;
/// Arrivals per phase of the bursty on/off modulation: the phase flips
/// every `BURST_PHASE_GAPS` requests, so each on phase packs that many
/// arrivals into a `burst ×` shorter window.
pub const BURST_PHASE_GAPS: u64 = 64;

impl ArrivalProcess {
    /// Short label for reports (the canonical [`FromStr`] spelling).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Uniform => "uniform",
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }
}

impl fmt::Display for ArrivalProcess {
    /// Canonical CLI syntax, parseable back by [`FromStr`]:
    ///
    /// ```text
    /// uniform
    /// poisson
    /// bursty          (burst = DEFAULT_BURST)
    /// bursty:2.5      (explicit burst multiplier)
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalProcess::Bursty { burst } => write!(f, "bursty:{burst}"),
            other => f.write_str(other.label()),
        }
    }
}

/// An arrival-process name that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArrivalError(String);

impl fmt::Display for ParseArrivalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown arrival process {:?} (expected uniform, poisson, \
             bursty, or bursty:<mult>)",
            self.0
        )
    }
}

impl Error for ParseArrivalError {}

impl FromStr for ArrivalProcess {
    type Err = ParseArrivalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseArrivalError(s.to_string());
        Ok(match s.to_ascii_lowercase().as_str() {
            "uniform" => ArrivalProcess::Uniform,
            "poisson" => ArrivalProcess::Poisson,
            "bursty" => ArrivalProcess::Bursty {
                burst: DEFAULT_BURST,
            },
            other => match other.strip_prefix("bursty:") {
                Some(m) => {
                    let burst: f64 = m.parse().map_err(|_| err())?;
                    if !(burst > 1.0 && burst.is_finite()) {
                        return Err(err());
                    }
                    ArrivalProcess::Bursty { burst }
                }
                None => return Err(err()),
            },
        })
    }
}

/// One open-loop request: an arrival timestamp plus what the client asked
/// for. The dispatch loop routes it to a per-core queue and measures
/// end-to-end latency from `arrival`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Position in the arrival stream (0-based).
    pub seq: u64,
    /// Arrival timestamp in simulated cycles.
    pub arrival: u64,
    /// Application key (already skew-scrambled).
    pub key: u64,
    /// Whether the request mutates (SET/insert) or reads (GET).
    pub write: bool,
}

/// Workload shape of the generated requests.
#[derive(Debug, Clone)]
pub struct RequestMix {
    /// Keyspace size.
    pub keys: u64,
    /// Fraction of draws hitting the hot set (`0.9` = YCSB high skew).
    pub hot_fraction: f64,
    /// Fraction of the keyspace that is hot (`0.1` = YCSB high skew).
    pub hot_keys_fraction: f64,
    /// Fraction of requests that write.
    pub write_fraction: f64,
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix {
            keys: 4096,
            hot_fraction: 0.9,
            hot_keys_fraction: 0.1,
            write_fraction: 0.5,
        }
    }
}

/// Generate `n` open-loop requests at a mean inter-arrival gap of
/// `mean_gap_cycles`, deterministically from `seed`. Timestamps are
/// non-decreasing and start at the first sampled gap.
pub fn generate(
    process: ArrivalProcess,
    mean_gap_cycles: f64,
    n: u64,
    mix: &RequestMix,
    seed: u64,
) -> Vec<Request> {
    assert!(mean_gap_cycles > 0.0, "need a positive mean gap");
    let mut gaps = Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut ops = Rng::new(seed ^ 0x5ca1_ab1e_0000_0001);
    let mut keys = SkewedKeys::new(mix.keys, mix.hot_fraction, mix.hot_keys_fraction, seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|seq| {
            let mean = match process {
                ArrivalProcess::Uniform | ArrivalProcess::Poisson => mean_gap_cycles,
                ArrivalProcess::Bursty { burst } => {
                    // Count-based square wave: equal arrival counts per
                    // phase, on-phase gaps shrunk by `burst`, off-phase
                    // gaps stretched to `2 - 1/burst` so the average gap
                    // stays exactly `mean_gap_cycles`.
                    if (seq / BURST_PHASE_GAPS).is_multiple_of(2) {
                        mean_gap_cycles / burst
                    } else {
                        mean_gap_cycles * (2.0 - 1.0 / burst)
                    }
                }
            };
            let gap = match process {
                ArrivalProcess::Uniform => mean,
                // Inverse-CDF exponential sample; 1 - u in (0, 1] avoids
                // ln(0).
                _ => -mean * (1.0 - gaps.unit_f64()).ln(),
            };
            t += gap;
            Request {
                seq,
                arrival: t as u64,
                key: keys.next_key(),
                write: ops.unit_f64() < mix.write_fraction,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_through_fromstr() {
        for p in [
            ArrivalProcess::Uniform,
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty { burst: 2.5 },
        ] {
            assert_eq!(p.to_string().parse::<ArrivalProcess>(), Ok(p));
        }
        assert_eq!(
            "bursty".parse::<ArrivalProcess>(),
            Ok(ArrivalProcess::Bursty {
                burst: DEFAULT_BURST
            })
        );
        assert!("bogus".parse::<ArrivalProcess>().is_err());
        assert!("bursty:0.5".parse::<ArrivalProcess>().is_err());
        assert!("bursty:x".parse::<ArrivalProcess>().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let mix = RequestMix::default();
        let a = generate(ArrivalProcess::Poisson, 500.0, 200, &mix, 7);
        let b = generate(ArrivalProcess::Poisson, 500.0, 200, &mix, 7);
        assert_eq!(a, b);
        let c = generate(ArrivalProcess::Poisson, 500.0, 200, &mix, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_monotone_and_near_rate() {
        for p in [
            ArrivalProcess::Uniform,
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty { burst: 4.0 },
        ] {
            let reqs = generate(p, 100.0, 2000, &RequestMix::default(), 3);
            assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
            // Long-run offered rate within 20% of nominal for all processes.
            let span = reqs.last().unwrap().arrival as f64;
            let mean_gap = span / 2000.0;
            assert!(
                (80.0..125.0).contains(&mean_gap),
                "{p}: mean gap {mean_gap}"
            );
        }
    }

    #[test]
    fn bursty_concentrates_arrivals() {
        let mix = RequestMix::default();
        let poisson = generate(ArrivalProcess::Poisson, 100.0, 4000, &mix, 11);
        let bursty = generate(ArrivalProcess::Bursty { burst: 4.0 }, 100.0, 4000, &mix, 11);
        // Count arrivals in fixed windows; the bursty stream's busiest
        // window must be markedly busier than Poisson's.
        let peak = |reqs: &[Request]| {
            let mut counts = std::collections::HashMap::new();
            for r in reqs {
                *counts.entry(r.arrival / 3200).or_insert(0u64) += 1;
            }
            counts.values().copied().max().unwrap()
        };
        assert!(
            peak(&bursty) > peak(&poisson) * 3 / 2,
            "bursty peak {} vs poisson peak {}",
            peak(&bursty),
            peak(&poisson)
        );
    }

    #[test]
    fn write_fraction_respected() {
        let mix = RequestMix {
            write_fraction: 0.25,
            ..RequestMix::default()
        };
        let reqs = generate(ArrivalProcess::Poisson, 10.0, 8000, &mix, 5);
        let writes = reqs.iter().filter(|r| r.write).count();
        assert!((1600..2400).contains(&writes), "writes={writes}");
    }

    #[test]
    fn keys_stay_in_keyspace() {
        let mix = RequestMix {
            keys: 64,
            ..RequestMix::default()
        };
        for r in generate(ArrivalProcess::Uniform, 10.0, 1000, &mix, 1) {
            assert!(r.key < 64);
        }
    }
}
