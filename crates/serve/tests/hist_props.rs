//! Property tests for the histogram merge contract and quantile bounds.
//!
//! Hand-rolled randomized trials (seeded LCG, no external property-test
//! dependency — the workspace is hermetic): each trial draws a random
//! sample stream spanning the exact low range through large bucketed
//! values, then checks the algebraic laws [`serve::Hist`] promises.

use serve::Hist;

/// Minimal deterministic generator for trial data (distinct from
/// `apps::rng::Rng` so test inputs aren't correlated with workload
/// streams).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Constants from Knuth's MMIX LCG.
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    /// A sample spanning many octaves: uniform within a random bit-width.
    fn sample(&mut self) -> u64 {
        let bits = self.next() % 49; // widths 0..=48 bits
        self.next() >> (63 - bits.min(63))
    }
}

fn stream(seed: u64, n: usize) -> Vec<u64> {
    let mut g = Lcg(seed);
    (0..n).map(|_| g.sample()).collect()
}

fn hist_of(samples: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &v in samples {
        h.record(v);
    }
    h
}

#[test]
fn merge_identity_left_and_right() {
    for seed in 1..=20u64 {
        let h = hist_of(&stream(seed, 500));
        let mut left = Hist::new();
        left.merge(&h);
        assert_eq!(left, h, "seed {seed}: new().merge(h) != h");
        let mut right = h.clone();
        right.merge(&Hist::new());
        assert_eq!(right, h, "seed {seed}: h.merge(new()) != h");
    }
}

#[test]
fn merge_commutes() {
    for seed in 1..=20u64 {
        let a = hist_of(&stream(seed, 400));
        let b = hist_of(&stream(seed.wrapping_mul(31) + 7, 300));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}: a+b != b+a");
    }
}

#[test]
fn merge_is_associative() {
    for seed in 1..=20u64 {
        let a = hist_of(&stream(seed, 200));
        let b = hist_of(&stream(seed + 1000, 200));
        let c = hist_of(&stream(seed + 2000, 200));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "seed {seed}: (a+b)+c != a+(b+c)");
    }
}

#[test]
fn shard_merge_equals_monolithic() {
    for seed in 1..=20u64 {
        let samples = stream(seed, 1000);
        let monolithic = hist_of(&samples);
        // Shard the stream across a seed-dependent shard count, any
        // interleaving (round-robin keeps all shards non-trivial).
        let shards = 2 + (seed as usize % 7);
        let mut parts = vec![Hist::new(); shards];
        for (i, &v) in samples.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut merged = Hist::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(
            merged, monolithic,
            "seed {seed}: {shards}-way shard merge != monolithic"
        );
    }
}

#[test]
fn quantiles_bracket_true_sample() {
    for seed in 1..=20u64 {
        let mut samples = stream(seed, 999);
        let h = hist_of(&samples);
        samples.sort_unstable();
        for &q in &[0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let truth = samples[rank - 1];
            let (lo, hi) = h.quantile_bounds(q);
            assert!(
                lo <= truth && truth <= hi,
                "seed {seed} q={q}: true {truth} outside bucket [{lo},{hi}]"
            );
            // The reported point estimate is the bucket's upper bound:
            // never below the true sample, and within one sub-bucket width.
            assert_eq!(h.quantile(q), hi);
        }
    }
}

#[test]
fn taken_intervals_remerge_to_monolithic() {
    // The soak-campaign snapshot contract: `take()` at random interval
    // boundaries drains the live histogram; re-merging the taken intervals
    // (any grouping) is bit-identical to one histogram fed the whole
    // stream, and each take leaves the merge identity behind.
    for seed in 1..=20u64 {
        let samples = stream(seed, 800);
        let monolithic = hist_of(&samples);
        let mut cut_rng = Lcg(seed ^ 0x7a4e);
        let mut live = Hist::new();
        let mut remerged = Hist::new();
        for &v in &samples {
            live.record(v);
            if cut_rng.next().is_multiple_of(50) {
                let interval = live.take();
                assert_eq!(live, Hist::new(), "seed {seed}: take leaves identity");
                remerged.merge(&interval);
            }
        }
        remerged.merge(&live.take());
        assert_eq!(remerged, monolithic, "seed {seed}");
    }
}

#[test]
fn count_sum_extrema_survive_merge() {
    for seed in 1..=20u64 {
        let a = stream(seed, 300);
        let b = stream(seed + 77, 500);
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        assert_eq!(merged.count(), all.len() as u64);
        assert_eq!(merged.min(), *all.iter().min().unwrap());
        assert_eq!(merged.max(), *all.iter().max().unwrap());
        let mean = all.iter().map(|&v| v as f64).sum::<f64>() / all.len() as f64;
        assert!((merged.mean() - mean).abs() <= mean.abs() * 1e-12 + 1e-9);
    }
}
