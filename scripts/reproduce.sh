#!/usr/bin/env bash
# Regenerate every table and figure of the TVARAK paper's evaluation.
# Results land in results/*.csv; tables print to stdout.
#
# Usage: scripts/reproduce.sh [quick|reduced|full]
set -euo pipefail
export TVARAK_SCALE="${1:-full}"
cd "$(dirname "$0")/.."

cargo build --release -p bench

run() { echo "=== $1 ${2:-} ==="; cargo run --release -q -p bench --bin "$1" -- ${2:-}; }

run show_config
run fig8_redis
run fig8_kv
run fig8_nstore
run fig8_fio
run fig8_stream
TVARAK_SCALE=reduced run fig9_ablation a
TVARAK_SCALE=reduced run fig9_ablation b
TVARAK_SCALE=reduced run fig10_sensitivity redundancy
TVARAK_SCALE=reduced run fig10_sensitivity diffs
TVARAK_SCALE=reduced run sec4h_scaling
TVARAK_SCALE=reduced run vilamb_sweep
TVARAK_SCALE=reduced run ycsb_suite
run coverage_campaign
run chaos_campaign

echo "All experiments complete; CSVs in results/."
