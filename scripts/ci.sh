#!/usr/bin/env bash
# Tier-1 gate: build, unit/integration tests, and quick-scale smokes of the
# fault-injection campaigns. The campaigns exit non-zero on any survival
# invariant violation (silent wrong data under a verifying design, an
# unsettled media inconsistency after convergence, a poisoned page that
# fails open, or a resilver that fails to complete / diverges from the
# never-faulted oracle), so this script fails CI on them.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (workspace) ==="
cargo build --release --workspace

echo "=== clippy (workspace, -D warnings) ==="
cargo clippy -q --all-targets -- -D warnings

echo "=== tests (workspace) ==="
cargo test --release --workspace --quiet

echo "=== coverage_campaign (quick) ==="
TVARAK_SCALE=quick ./target/release/coverage_campaign

echo "=== chaos_campaign (quick) ==="
TVARAK_SCALE=quick ./target/release/chaos_campaign

echo "=== degraded_campaign (quick) ==="
# Exits non-zero on any degraded-mode invariant violation: resilver fails
# to complete under load, silent wrong data, or post-rebuild media that
# diverges from the never-faulted oracle (DESIGN.md §13).
TVARAK_SCALE=quick ./target/release/degraded_campaign

echo "=== serve_campaign (quick) ==="
# The binary exits non-zero when admission accounting breaks (offered !=
# accepted + shed at any point, or an admitted request that never
# completed) or when no sweep point lands past the saturation knee.
# Double-check the accounting from the CSV it wrote (belt and braces).
TVARAK_SCALE=quick ./target/release/serve_campaign
if awk -F, 'NR > 1 && $1 != "knee-est" && $8 != $9 + $10' results/serve_campaign.csv | grep -q .; then
    echo "ci: serve_campaign.csv has a row with offered != accepted + shed" >&2
    exit 1
fi

echo "=== crashsim_campaign (quick) ==="
# The binary already exits non-zero on any unrecoverable-loss crash point;
# double-check the CSV it wrote reports zero lost rows (belt and braces —
# a reporting bug must not read as a clean campaign).
./target/release/crashsim_campaign --quick
if awk -F, 'NR > 1 && $10 == "lost"' results/crashsim_campaign.csv | grep -q .; then
    echo "ci: crashsim_campaign.csv contains unrecoverable-loss rows" >&2
    exit 1
fi

echo "=== soak_campaign --jobs determinism (short horizon) ==="
# The soak binary itself exits non-zero if any cell's merged interval
# snapshots differ from the machine's monolithic stats (DESIGN.md §16);
# on top of that, the CSV must be byte-identical at any --jobs width.
soak_bin="$PWD/target/release/soak_campaign"
soak_tmp="$(mktemp -d)"
trap 'rm -rf "$soak_tmp"' EXIT
mkdir -p "$soak_tmp/j1" "$soak_tmp/j4"
(cd "$soak_tmp/j1" && TVARAK_SCALE=quick \
    "$soak_bin" --intervals 3 --ops-per-interval 256 --jobs 1 > stdout.txt)
(cd "$soak_tmp/j4" && TVARAK_SCALE=quick \
    "$soak_bin" --intervals 3 --ops-per-interval 256 --jobs 4 > stdout.txt)
for f in results/soak_campaign.csv stdout.txt; do
    if ! diff -q "$soak_tmp/j1/$f" "$soak_tmp/j4/$f"; then
        echo "ci: soak_campaign $f differs between --jobs 1 and --jobs 4" >&2
        exit 1
    fi
done
echo "ci: soak_campaign CSV and stdout byte-identical at --jobs 1 and 4"
mkdir -p results
cp "$soak_tmp/j1/results/soak_campaign.csv" results/soak_campaign.csv
rm -rf "$soak_tmp"
trap - EXIT

echo "=== perf_baseline (quick smoke) ==="
# Runs the simulator-performance baseline in quick mode and checks that
# BENCH_perf.json comes out well-formed. The committed BENCH_perf.json is
# regenerated manually in full mode (see EXPERIMENTS.md); CI only smokes
# the instrument, so run in a scratch dir to avoid clobbering it.
repo_root="$PWD"
perf_tmp="$(mktemp -d)"
trap 'rm -rf "$perf_tmp"' EXIT
(cd "$perf_tmp" && "$repo_root/target/release/perf_baseline" --quick > /dev/null)
for key in '"schema"' '"hw_threads"' '"line_speedup"' '"sim_cycles_per_sec"' '"cells_per_sec"' \
           '"trace_encode_mib_s"' '"trace_decode_mib_s"' '"rss_peak_kb"'; do
    grep -q "$key" "$perf_tmp/BENCH_perf.json" \
        || { echo "ci: BENCH_perf.json missing key $key" >&2; exit 1; }
done

echo "=== perf_dashboard (smoke) ==="
# The dashboard generator must run cleanly against the repo's git history
# (old schemas included) and the soak CSV the smoke above just produced.
scripts/perf_dashboard.sh
for f in results/perf_dashboard.csv results/perf_dashboard.md; do
    [ -s "$f" ] || { echo "ci: perf_dashboard produced empty $f" >&2; exit 1; }
done
grep -q 'soak campaign' results/perf_dashboard.md \
    || { echo "ci: perf_dashboard.md missing the soak section" >&2; exit 1; }

echo "=== bound-weave CSV differential (fig8_fio, threads x shards sweep) ==="
# The bound-weave hard requirement: campaign output is byte-identical at any
# MEMSIM_ENGINE_THREADS and any MEMSIM_WEAVE_SHARDS. Run one fio campaign
# sequentially, then sweep thread counts (default shards) and shard counts
# (at 4 threads), byte-diffing every CSV against the sequential oracle.
weave_tmp="$(mktemp -d)"
trap 'rm -rf "$perf_tmp" "$weave_tmp"' EXIT
mkdir -p "$weave_tmp/seq"
(cd "$weave_tmp/seq" && TVARAK_SCALE=quick MEMSIM_ENGINE_THREADS=1 \
    "$repo_root/target/release/fig8_fio" --jobs 1 > /dev/null)
for t in 4 8; do
    mkdir -p "$weave_tmp/par$t"
    (cd "$weave_tmp/par$t" && TVARAK_SCALE=quick MEMSIM_ENGINE_THREADS=$t \
        "$repo_root/target/release/fig8_fio" --jobs 1 > /dev/null)
    if ! diff -q "$weave_tmp/seq/results/fig8_fio.csv" "$weave_tmp/par$t/results/fig8_fio.csv"; then
        echo "ci: fig8_fio.csv differs between sequential and $t engine threads" >&2
        exit 1
    fi
done
for sh in 1 2 4; do
    mkdir -p "$weave_tmp/shard$sh"
    (cd "$weave_tmp/shard$sh" && TVARAK_SCALE=quick MEMSIM_ENGINE_THREADS=4 \
        MEMSIM_WEAVE_SHARDS=$sh \
        "$repo_root/target/release/fig8_fio" --jobs 1 > /dev/null)
    if ! diff -q "$weave_tmp/seq/results/fig8_fio.csv" "$weave_tmp/shard$sh/results/fig8_fio.csv"; then
        echo "ci: fig8_fio.csv differs between sequential and 4 threads / $sh shards" >&2
        exit 1
    fi
done
echo "ci: fig8_fio.csv byte-identical at 1/4/8 engine threads and 1/2/4 weave shards"

echo "=== weave divergence-rate smoke (fig8_fio must not fall back) ==="
# A weave cell that diverges reruns sequentially — bit-identical output, so
# the byte-diffs above cannot see it. The fallback would silently void the
# scaling win, so fail CI if any fig8_fio cell under the default config
# printed the sequential-fallback marker during the 4-thread run.
div_tmp="$(mktemp -d)"
trap 'rm -rf "$perf_tmp" "$weave_tmp" "$div_tmp"' EXIT
(cd "$div_tmp" && TVARAK_SCALE=quick MEMSIM_ENGINE_THREADS=4 \
    "$repo_root/target/release/fig8_fio" --jobs 1 > /dev/null 2> stderr.txt) || {
    cat "$div_tmp/stderr.txt" >&2; exit 1; }
if grep -q "rerunning sequentially" "$div_tmp/stderr.txt"; then
    echo "ci: fig8_fio diverged from the weave path under the default config:" >&2
    grep "rerunning sequentially" "$div_tmp/stderr.txt" >&2
    exit 1
fi
echo "ci: no weave cell fell back to sequential"

echo "=== degraded_campaign --jobs determinism ==="
# The campaign assembles its CSV from in-input-order results, so any
# --jobs setting must emit the same bytes.
deg_tmp="$(mktemp -d)"
trap 'rm -rf "$perf_tmp" "$weave_tmp" "$deg_tmp"' EXIT
mkdir -p "$deg_tmp/j1" "$deg_tmp/j4"
(cd "$deg_tmp/j1" && TVARAK_SCALE=quick \
    "$repo_root/target/release/degraded_campaign" --jobs 1 > /dev/null)
(cd "$deg_tmp/j4" && TVARAK_SCALE=quick \
    "$repo_root/target/release/degraded_campaign" --jobs 4 > /dev/null)
if ! diff -q "$deg_tmp/j1/results/degraded_campaign.csv" "$deg_tmp/j4/results/degraded_campaign.csv"; then
    echo "ci: degraded_campaign.csv differs between --jobs 1 and --jobs 4" >&2
    exit 1
fi
echo "ci: degraded_campaign.csv byte-identical at --jobs 1 and 4"

echo "=== serve_campaign --jobs determinism (knee mode) ==="
# Knee bisection decides probe loads from earlier parallel results, so it
# is the strongest determinism stressor: the whole CSV (sweep + knee
# probes + estimates) must be byte-identical at any --jobs width.
srv_tmp="$(mktemp -d)"
trap 'rm -rf "$perf_tmp" "$weave_tmp" "$deg_tmp" "$srv_tmp"' EXIT
mkdir -p "$srv_tmp/j1" "$srv_tmp/j4"
(cd "$srv_tmp/j1" && TVARAK_SCALE=quick \
    "$repo_root/target/release/serve_campaign" --knee --jobs 1 > /dev/null)
(cd "$srv_tmp/j4" && TVARAK_SCALE=quick \
    "$repo_root/target/release/serve_campaign" --knee --jobs 4 > /dev/null)
if ! diff -q "$srv_tmp/j1/results/serve_campaign.csv" "$srv_tmp/j4/results/serve_campaign.csv"; then
    echo "ci: serve_campaign.csv differs between --jobs 1 and --jobs 4" >&2
    exit 1
fi
echo "ci: serve_campaign.csv byte-identical at --jobs 1 and 4"

echo "=== perf gate (>30% regression vs committed BENCH_perf.json fails) ==="
# Two tracked hot paths: engine simulation rate (first sim_cycles_per_sec in
# the file is the engine block's; the per-cell ones sit inside one-line cell
# objects) and the pinned *software* slice-by-8 checksum rate (host
# comparable — the dispatched kernel depends on what the CPU offers). Both
# sides of the comparison are best-of-N minima, which are stable under
# scheduler noise where single shots are not; 30% headroom plus a bounded
# retry (shared boxes see multi-second steal bursts that depress even the
# minimum) covers what remains.
perf_metric() { # file, key -> first value of "key": <float>
    grep -Eo "\"$2\": [0-9.]+" "$1" | head -1 | awk '{print $2}'
}
# Sharded-weave scaling gate: on a host with >= 4 cores the 4-engine-thread
# fio cell must beat sequential by 1.2x (dependency-vector admission lets
# epochs on disjoint shards apply concurrently, so the workers must deliver
# real parallelism, not just break even). Smaller hosts cannot run the
# replay workers concurrently, so the full gate is skipped there — loudly,
# so a quiet CI downgrade never masks a scaling regression — and replaced
# with an overhead bound: even time-sliced onto too few cores, the weave
# path must stay within 2x of sequential (speedup >= 0.5).
host_cores=$(nproc 2>/dev/null || echo 1)
scaling_speedup4() { # file -> the threads-4 scaling point's speedup
    grep '"threads": 4' "$1" | grep -Eo '"speedup": [0-9.]+' | head -1 | awk '{print $2}'
}
gate_ok=""
for attempt in 1 2 3; do
    [ "$attempt" -gt 1 ] && {
        echo "ci: perf gate retry $attempt (noise burst suspected)"
        (cd "$perf_tmp" && "$repo_root/target/release/perf_baseline" --quick > /dev/null)
    }
    gate_ok=yes
    for key in sim_cycles_per_sec line_slice8_mib_s trace_encode_mib_s trace_decode_mib_s; do
        committed=$(perf_metric BENCH_perf.json "$key")
        current=$(perf_metric "$perf_tmp/BENCH_perf.json" "$key")
        if [ -z "$committed" ] || [ -z "$current" ]; then
            echo "ci: perf gate could not read $key" >&2
            exit 1
        fi
        if awk -v cur="$current" -v base="$committed" 'BEGIN { exit !(cur >= 0.7 * base) }'; then
            echo "ci: perf $key ok ($current vs committed $committed)"
        else
            echo "ci: perf $key low: $current vs committed $committed (>30% drop)"
            gate_ok=""
        fi
    done
    speedup4=$(scaling_speedup4 "$perf_tmp/BENCH_perf.json")
    if [ -z "$speedup4" ]; then
        echo "ci: perf gate could not read the 4-thread scaling speedup" >&2
        exit 1
    fi
    if [ "$host_cores" -ge 4 ]; then
        if awk -v s="$speedup4" 'BEGIN { exit !(s > 1.2) }'; then
            echo "ci: engine scaling ok (4-thread speedup $speedup4 on $host_cores detected cores)"
        else
            echo "ci: engine scaling low: 4-thread speedup $speedup4 <= 1.2 on $host_cores detected cores"
            gate_ok=""
        fi
    else
        echo "ci: SKIPPED engine-scaling speedup gate: host has $host_cores detected core(s), need >= 4"
        if awk -v s="$speedup4" 'BEGIN { exit !(s >= 0.5) }'; then
            echo "ci: engine scaling overhead ok (4-thread speedup $speedup4 >= 0.5 on $host_cores core(s))"
        else
            echo "ci: engine scaling overhead high: 4-thread speedup $speedup4 < 0.5 on $host_cores core(s)"
            gate_ok=""
        fi
    fi
    [ -n "$gate_ok" ] && break
done
if [ -z "$gate_ok" ]; then
    echo "ci: perf regression persisted across 3 attempts" >&2
    exit 1
fi

echo "ci: all gates passed"
