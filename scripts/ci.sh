#!/usr/bin/env bash
# Tier-1 gate: build, unit/integration tests, and quick-scale smokes of the
# two fault-injection campaigns. The campaigns exit non-zero on any survival
# invariant violation (silent wrong data under a verifying design, an
# unsettled media inconsistency after convergence, or a poisoned page that
# fails open), so this script fails CI on them.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (workspace) ==="
cargo build --release --workspace

echo "=== tests (workspace) ==="
cargo test --release --workspace --quiet

echo "=== coverage_campaign (quick) ==="
TVARAK_SCALE=quick ./target/release/coverage_campaign

echo "=== chaos_campaign (quick) ==="
TVARAK_SCALE=quick ./target/release/chaos_campaign

echo "ci: all gates passed"
