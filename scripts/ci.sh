#!/usr/bin/env bash
# Tier-1 gate: build, unit/integration tests, and quick-scale smokes of the
# two fault-injection campaigns. The campaigns exit non-zero on any survival
# invariant violation (silent wrong data under a verifying design, an
# unsettled media inconsistency after convergence, or a poisoned page that
# fails open), so this script fails CI on them.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (workspace) ==="
cargo build --release --workspace

echo "=== clippy (workspace, -D warnings) ==="
cargo clippy -q --all-targets -- -D warnings

echo "=== tests (workspace) ==="
cargo test --release --workspace --quiet

echo "=== coverage_campaign (quick) ==="
TVARAK_SCALE=quick ./target/release/coverage_campaign

echo "=== chaos_campaign (quick) ==="
TVARAK_SCALE=quick ./target/release/chaos_campaign

echo "=== crashsim_campaign (quick) ==="
# The binary already exits non-zero on any unrecoverable-loss crash point;
# double-check the CSV it wrote reports zero lost rows (belt and braces —
# a reporting bug must not read as a clean campaign).
./target/release/crashsim_campaign --quick
if awk -F, 'NR > 1 && $10 == "lost"' results/crashsim_campaign.csv | grep -q .; then
    echo "ci: crashsim_campaign.csv contains unrecoverable-loss rows" >&2
    exit 1
fi

echo "=== perf_baseline (quick smoke) ==="
# Runs the simulator-performance baseline in quick mode and checks that
# BENCH_perf.json comes out well-formed. The committed BENCH_perf.json is
# regenerated manually in full mode (see EXPERIMENTS.md); CI only smokes
# the instrument, so run in a scratch dir to avoid clobbering it.
repo_root="$PWD"
perf_tmp="$(mktemp -d)"
trap 'rm -rf "$perf_tmp"' EXIT
(cd "$perf_tmp" && "$repo_root/target/release/perf_baseline" --quick > /dev/null)
for key in '"schema"' '"line_speedup"' '"sim_cycles_per_sec"' '"cells_per_sec"'; do
    grep -q "$key" "$perf_tmp/BENCH_perf.json" \
        || { echo "ci: BENCH_perf.json missing key $key" >&2; exit 1; }
done

echo "ci: all gates passed"
